// Package service implements dvrd, the cached, concurrent simulation
// service: an HTTP/JSON server that accepts declarative simulation jobs
// (workloads.Ref + technique + cpu.Config), runs them on a bounded worker
// pool with per-request deadlines that cancel in-flight simulations, and
// deduplicates identical jobs twice over — a content-addressed result
// cache for repeated jobs, single-flight collapsing for concurrent ones.
// The wire types live in internal/service/api; a Go client in
// internal/service/client.
package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dvr/internal/checkpoint"
	"dvr/internal/cpu"
	"dvr/internal/experiments"
	"dvr/internal/faults"
	"dvr/internal/obs"
	"dvr/internal/service/api"
	"dvr/internal/stream"
	"dvr/internal/workloads"
)

var (
	errShuttingDown = errors.New("service: shutting down")
	// errOverloaded is the load-shed signal: the worker queue is full, so
	// the request is rejected 429 + Retry-After instead of stalling the
	// connection behind every queued job. Jobs are idempotent by cache
	// key, so clients retry safely (internal/service/client does).
	errOverloaded = errors.New("service: overloaded: simulation queue is full")
)

// retryAfterSeconds is the hint sent with 429/503 responses. Simulations
// are short relative to human patience but long relative to a network
// round trip; one second keeps honest clients from busy-spinning without
// parking them needlessly.
const retryAfterSeconds = 1

// minDeadlineBudget is the smallest propagated deadline budget worth
// admitting: below it the request is doomed — any work started would be
// abandoned before it could answer — so the server rejects 504
// immediately and the upstream's own deadline machinery takes over.
const minDeadlineBudget = 2 * time.Millisecond

// errDeadlineBudget is the typed doomed-request rejection; it wraps
// context.DeadlineExceeded so the existing status/code mapping answers
// 504 api.CodeTimeout.
var errDeadlineBudget = fmt.Errorf("service: deadline budget exhausted: %w", context.DeadlineExceeded)

// deadlineBudget parses the X-Deadline-Ms header: the client's remaining
// deadline at send time, shrunk hop by hop. ok is false when the header
// is absent or malformed (a malformed budget is ignored, not fatal — the
// request still has timeout_ms and the server default).
func deadlineBudget(r *http.Request) (time.Duration, bool) {
	h := r.Header.Get(api.HeaderDeadlineMS)
	if h == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// Config sizes the server.
type Config struct {
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds tasks waiting for a worker; 0 means 256.
	QueueDepth int
	// CacheEntries bounds the in-memory result cache; 0 means 4096.
	CacheEntries int
	// CacheDir, when set, spills cached results to disk as
	// <dir>/<key>.json and reads them back on memory misses.
	CacheDir string
	// CheckpointEvery, when nonzero (and CacheDir is set), checkpoints
	// every running simulation to <CacheDir>/checkpoints/<key>.ckpt each
	// N committed instructions; interrupted jobs resume from their latest
	// valid checkpoint at the next startup.
	CheckpointEvery uint64
	// WatchdogCycles, when nonzero, aborts any simulation that commits no
	// instruction for this many cycles with a typed livelock error and a
	// forensics dump under <CacheDir>/forensics/.
	WatchdogCycles uint64
	// DefaultTimeout bounds requests that do not set timeout_ms; 0 means
	// 5 minutes.
	DefaultTimeout time.Duration
	// BaseEntries bounds the memoized built workload images; 0 means 32.
	BaseEntries int
	// Faults injects scripted failures (chaos tests); nil means none.
	Faults *faults.Injector
	// Logger receives one structured line per request (id, status, span
	// timings); nil discards them.
	Logger *slog.Logger
	// TraceIntervalEvery, when nonzero, attaches an interval sampler to
	// every simulation (one sample per N committed instructions) and keeps
	// each cell's series in the trace store, served at
	// GET /v1/jobs/{id}/trace. 0 disables tracing. Tracing is
	// observational: results are bit-identical either way.
	TraceIntervalEvery uint64
	// TraceEntries bounds the in-memory trace store; 0 means 1024. With
	// CacheDir set, series also spill to <dir>/traces/.
	TraceEntries int
	// StreamReplay bounds each job's replay ring — the Last-Event-ID
	// resume window of GET /v1/jobs/{id}/stream; 0 means 4096 events.
	StreamReplay int
	// StreamBuffer is the default per-subscriber delivery buffer; 0 means
	// 1024 events. A subscriber that falls further behind loses its oldest
	// undelivered events (counted at /metrics).
	StreamBuffer int
	// StreamTTL reaps stream sessions not polled for this long (a wedged
	// proxy, an abandoned connection); 0 means 60s.
	StreamTTL time.Duration
	// StreamHeartbeat is the SSE comment-keepalive interval on quiet
	// streams; 0 means 15s.
	StreamHeartbeat time.Duration
	// TraceSpans, when nonzero, enables distributed tracing: the server
	// continues propagated X-Trace-Ctx contexts, collects finished spans
	// in a bounded ring of this capacity (served at GET /v1/spans, dumped
	// by the flight recorder), and stamps trace_id/span_id onto its log
	// lines. 0 disables span tracing at zero cost on the request path.
	TraceSpans int
	// ProcName labels this process's spans in fleet trace views (e.g.
	// "worker@127.0.0.1:8381"); "" means "worker".
	ProcName string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.BaseEntries <= 0 {
		c.BaseEntries = 32
	}
	if c.TraceEntries <= 0 {
		c.TraceEntries = 1024
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the dvrd service. Construct with New, mount Handler, and call
// Shutdown to drain.
type Server struct {
	cfg    Config
	cache  *resultCache
	flight *flightGroup[cpu.Result]
	pool   *pool
	jobs   *jobStore
	bases  *baseCache

	// rootCtx parents every async job (and boot-time resume); Abort
	// cancels it — the in-process analogue of SIGKILL for chaos tests.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	// draining flips when graceful shutdown begins: /readyz answers 503 so
	// a frontend stops routing new cells here while in-flight work — which
	// this worker still owns — finishes.
	draining atomic.Bool

	// ckpts is the durable checkpoint store (nil when disabled);
	// ckptHealth is its startup scan.
	ckpts      *checkpoint.Store
	ckptHealth checkpoint.Health

	// streams owns the per-job broadcasters behind GET
	// /v1/jobs/{id}/stream and the TTL janitor reaping idle sessions.
	streams *stream.Registry

	// traces holds per-cell interval telemetry (nil when tracing is
	// disabled); tracer is the distributed-tracing span collector (nil
	// when disabled); logger, reqSeq and the histograms back the request
	// observability layer (observe.go).
	traces    *traceStore
	tracer    *obs.Tracer
	logger    *slog.Logger
	reqSeq    atomic.Uint64
	reqTotal  atomic.Uint64
	reqHist   *histogram
	queueHist *histogram

	start      time.Time
	startInsts uint64
	sfRetries  atomic.Uint64 // single-flight followers that re-ran after a leader error
	simsDone   atomic.Uint64 // detailed simulations run to completion and committed

	// adm is the AIMD admission controller gating interactive requests;
	// deadlineRejected counts doomed requests rejected 504 on arrival.
	adm              *aimd
	deadlineRejected atomic.Uint64

	ckptWritten   atomic.Uint64 // checkpoints persisted
	ckptResumed   atomic.Uint64 // runs resumed from a checkpoint
	ckptErrors    atomic.Uint64 // checkpoint writes that failed (run continued)
	watchdogTrips atomic.Uint64 // simulations aborted by the retirement watchdog
}

// New builds a server. It starts the worker pool immediately; with
// checkpointing configured it also scans the checkpoint directory and
// resumes any jobs a previous process left interrupted.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheEntries, cfg.CacheDir, cfg.Faults.Filesystem()),
		flight:     newFlightGroup[cpu.Result](),
		pool:       newPool(cfg.Workers, cfg.QueueDepth),
		jobs:       newJobStore(),
		bases:      newBaseCache(cfg.BaseEntries),
		logger:     cfg.Logger,
		reqHist:    newHistogram(latencyBounds),
		queueHist:  newHistogram(latencyBounds),
		start:      time.Now(),
		startInsts: experiments.SimInstructions(),
	}
	s.adm = newAIMD(cfg.Workers, cfg.Workers+cfg.QueueDepth)
	if cfg.TraceSpans > 0 {
		proc := cfg.ProcName
		if proc == "" {
			proc = "worker"
		}
		s.tracer = obs.New(proc, cfg.TraceSpans)
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	s.streams = stream.NewRegistry(stream.Config{
		ReplayEntries: cfg.StreamReplay,
		SessionBuffer: cfg.StreamBuffer,
		SessionTTL:    cfg.StreamTTL,
	})
	if cfg.TraceIntervalEvery > 0 {
		traceDir := ""
		if cfg.CacheDir != "" {
			traceDir = filepath.Join(cfg.CacheDir, "traces")
		}
		s.traces = newTraceStore(cfg.TraceEntries, traceDir, cfg.Faults.Filesystem())
	}
	if cfg.CacheDir != "" && cfg.CheckpointEvery > 0 {
		store, err := checkpoint.NewStore(filepath.Join(cfg.CacheDir, "checkpoints"), cfg.Faults.Filesystem())
		if err == nil {
			s.ckpts = store
			s.ckptHealth = store.Scan()
			s.resumePending()
		}
		// An unopenable checkpoint dir disables durability, not the server.
	}
	return s
}

// SpillHealth reports the startup scan of the spill directory (zero when
// no -cache-dir is configured).
func (s *Server) SpillHealth() SpillHealth { return s.cache.Health() }

// CheckpointHealth reports the startup scan of the checkpoint directory
// (zero when checkpointing is disabled). Pending lists the interrupted
// jobs found journaled at boot; the server resumes them in the background.
func (s *Server) CheckpointHealth() checkpoint.Health { return s.ckptHealth }

// Handler returns the routed HTTP handler, wrapped in the request
// observability middleware (request IDs, span log lines, the duration
// histogram).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /"+api.Version+"/sim", s.handleSim)
	mux.HandleFunc("POST /"+api.Version+"/batch", s.handleBatch)
	mux.HandleFunc("GET /"+api.Version+"/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /"+api.Version+"/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /"+api.Version+"/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /"+api.Version+"/spans", func(w http.ResponseWriter, r *http.Request) {
		serveSpans(w, r, s.tracer)
	})
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// normalizeErrors turns the mux's own plain-text 404/405 pages into
	// typed api.Error JSON; every other error body is already typed.
	return s.instrument(normalizeErrors(mux))
}

// BeginDrain marks the server draining: /healthz keeps answering ok (the
// process is alive) while /readyz flips to 503, so a frontend stops
// routing new cells here before the listener closes. The server still
// accepts and serves requests while draining — work it already owns, and
// stragglers routed during the frontend's detection window, finish
// normally.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Abort hard-cancels the server's root context: every async job (and any
// boot-time resume) stops at its next cancellation check, leaving
// checkpoint journals on disk exactly as a process kill would. Chaos tests
// use it — paired with a network partition — as the in-process analogue of
// SIGKILL; a real worker dies with the process instead.
func (s *Server) Abort() { s.rootCancel() }

// Shutdown drains the server: it waits for every async job to finish,
// then stops the worker pool (draining any queued tasks). In-flight HTTP
// requests are the http.Server's to drain; call its Shutdown first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		s.pool.Close()
		s.streams.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusError pairs an error with the HTTP status it maps to.
type statusError struct {
	code int
	err  error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

func badRequest(err error) error { return &statusError{http.StatusBadRequest, err} }

// httpStatus maps an error to its response code: 400 for malformed jobs,
// 504 for deadline-exceeded, 429 on a shed request, 503 while shutting
// down, 500 otherwise (including recovered worker panics).
func httpStatus(err error) int {
	var se *statusError
	switch {
	case errors.As(err, &se):
		return se.code
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the code is moot but 499-ish.
		return http.StatusGatewayTimeout
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, errShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorCode classifies an error for api.Error.Code — the machine-readable
// half of the failure model (DESIGN.md, "failure model").
func errorCode(err error) string {
	var (
		se *statusError
		pe *PanicError
	)
	switch {
	case errors.As(err, &pe):
		return api.CodeInternal
	case errors.As(err, &se) && se.code == http.StatusBadRequest:
		return api.CodeBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return api.CodeTimeout
	case errors.Is(err, context.Canceled):
		return api.CodeCanceled
	case errors.Is(err, errOverloaded):
		return api.CodeOverloaded
	case errors.Is(err, errShuttingDown):
		return api.CodeShuttingDown
	default:
		return api.CodeInternal
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := httpStatus(err)
	if (code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable) &&
		w.Header().Get("Retry-After") == "" {
		// Both conditions are transient; tell well-behaved clients when to
		// come back instead of letting them busy-spin. A handler that set
		// its own (adaptive) hint keeps it.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(w, code, api.Error{Code: errorCode(err), Error: err.Error()})
}

// config resolves the request's config override against the default.
func (s *Server) config(override *cpu.Config) cpu.Config {
	if override != nil {
		return *override
	}
	return cpu.DefaultConfig()
}

// timeout resolves a request's timeout_ms against the server default.
func (s *Server) timeout(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// requestTimeout resolves the effective deadline of a request: the
// tighter of its timeout_ms and the propagated X-Deadline-Ms budget. A
// budget too small to fit any work rejects the request outright
// (errDeadlineBudget, 504) — cancelling doomed work at admission instead
// of discovering the blown deadline after a simulation slot was burned.
func (s *Server) requestTimeout(r *http.Request, ms int64) (time.Duration, error) {
	d := s.timeout(ms)
	if budget, ok := deadlineBudget(r); ok {
		if budget < minDeadlineBudget {
			s.deadlineRejected.Add(1)
			return 0, errDeadlineBudget
		}
		if budget < d {
			d = budget
		}
	}
	return d, nil
}

// ---- cell execution ----

// admission selects how a cell enters the worker pool: interactive
// /v1/sim requests shed on a full queue (429 + Retry-After) so the
// connection never stalls; batch cells queue and wait — the batch was
// admitted as one request at the handler, and shedding its individual
// cells would tear half-finished matrices apart.
type admission int

const (
	admitShed admission = iota
	admitQueue
)

// runCell answers one (workload, technique, config) cell: from the result
// cache when possible, otherwise via single-flight on the cell's content
// address and a worker-pool simulation. The result stored and returned is
// canonical (deterministic), so repeated requests are byte-identical. A
// non-nil so selects the sampled path: the cell's content address includes
// the sampling options, so sampled and exact results never share a cache
// line or a single-flight. A non-nil pub streams the cell's lifecycle and
// telemetry to its job's subscribers; cells answered without running here
// (cache hits, single-flight followers) replay their stored series instead.
func (s *Server) runCell(ctx context.Context, ref workloads.Ref, tech string, cfg cpu.Config, so *api.SamplingOptions, adm admission, pub *cellPub) (api.SimResponse, error) {
	if _, err := experiments.ParseTechnique(tech); err != nil {
		return api.SimResponse{}, badRequest(err)
	}
	spec, err := workloads.Resolve(ref)
	if err != nil {
		return api.SimResponse{}, badRequest(err)
	}
	// Resolve normalized the ROI (0 -> kernel default); key the normalized
	// form so explicit-default and defaulted requests share a cache line.
	key := CacheKeySampled(spec.Ref, tech, cfg, so)
	pub.publish(api.Event{Kind: api.EventCellStarted, Key: key})
	if res, ok := s.cache.Get(key); ok {
		obs.FromContext(ctx).StartChild("worker.cache-hit").
			Attr("key", key).Attr("bench", ref.Kernel).Attr("technique", tech).End()
		s.replayTrace(pub, key, true)
		return api.SimResponse{Key: key, Cached: true, Result: res}, nil
	}
	simulate := func() (cpu.Result, error) {
		// Re-check under the flight: a just-landed leader may have filled
		// the cache between our miss and here. Peek, not Get — this
		// request's miss is already counted.
		if res, ok := s.cache.Peek(key); ok {
			return res, nil
		}
		runSpec := s.bases.memoize(spec)
		var (
			out    cpu.Result
			runErr error
		)
		enqueued := time.Now()
		task := func() {
			// Queue wait = admission to worker pickup: the span and
			// histogram the capacity dashboards watch.
			wait := time.Since(enqueued)
			parent := obs.FromContext(ctx)
			s.queueHist.observeTraced(wait, parent.TraceID())
			parent.StartChildAt("worker.queue-wait", enqueued).End()
			sp := spansFrom(ctx)
			sp.addQueueWait(wait)
			// The fault hook runs inside the worker so scripted panics
			// and slowdowns exercise the same recover/occupancy paths a
			// real simulator bug would.
			s.cfg.Faults.Sim(key)
			simStart := time.Now()
			ssp := parent.StartChild("worker.sim").
				Attr("key", key).Attr("bench", ref.Kernel).Attr("technique", tech)
			if so != nil {
				out, runErr = s.simulateSampled(ctx, runSpec, tech, cfg, so)
				ssp.Attr("sampled", "true")
			} else {
				out, runErr = s.simulate(ctx, key, runSpec, tech, cfg, pub)
			}
			ssp.Fail(runErr).End()
			sp.addSim(time.Since(simStart))
		}
		var err error
		if adm == admitShed {
			err = s.pool.TryDo(ctx, task)
		} else {
			err = s.pool.Do(ctx, task)
		}
		if err != nil {
			return cpu.Result{}, err
		}
		if runErr != nil {
			return cpu.Result{}, runErr
		}
		canon := out.Canonical()
		s.cache.Put(key, canon)
		// Counted only here — after the run committed its result — so a
		// simulation aborted mid-flight (caller gone, frontend crash) never
		// inflates it. Unlike CacheMisses, which counts at lookup time, the
		// fleet-wide sum of SimsCompleted equals the number of unique cells
		// even when a crash cancels in-flight work: that is the exactly-once
		// invariant the resume smoke asserts.
		s.simsDone.Add(1)
		return canon, nil
	}
	res, shared, err := s.flight.Do(ctx, key, simulate)
	if err != nil && shared && ctx.Err() == nil {
		// The leader failed for reasons of its own (panic, shed, its
		// context); this follower's request is still live, so retry once
		// as a potential new leader. The cache absorbs the case where the
		// leader actually succeeded before dying.
		s.sfRetries.Add(1)
		res, _, err = s.flight.Do(ctx, key, simulate)
	}
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			// A recovered worker panic is exactly what the flight recorder
			// exists for: breadcrumb the event into the ring, then seal the
			// ring to disk while the evidence is fresh.
			s.tracer.Event(obs.FromContext(ctx).TraceID(), "panic", pe.Error())
			s.dumpFlight("panic")
		}
		return api.SimResponse{}, err
	}
	if shared {
		// A follower never saw the leader's live samples (the leader may
		// even belong to a different job); the leader stored the series
		// before its flight resolved, so replay it here.
		s.replayTrace(pub, key, false)
	}
	// A follower's result came from the in-flight leader, not the cache;
	// report it uncached (metrics count it under single_flight_shared).
	return api.SimResponse{Key: key, Cached: false, Result: res}, nil
}

// runBatch answers a batch's cell list (the Workloads×Techniques matrix
// row-major, or the explicit Cells form — see api.BatchRequest.CellList).
// Cells run concurrently (the pool bounds actual simulation parallelism).
// A recovered worker panic fails only its own cell — the cell carries a
// typed api.Error and the rest of the batch completes — while systemic
// failures (deadline, shutdown) cancel the batch.
func (s *Server) runBatch(ctx context.Context, req api.BatchRequest, j *job) (*api.BatchResponse, error) {
	cfg := s.config(req.Config)
	list := req.CellList()
	// Validate every cell up front so a malformed one is a clean 400
	// before any simulation starts.
	for _, c := range list {
		if _, err := experiments.ParseTechnique(c.Technique); err != nil {
			return nil, badRequest(err)
		}
		if _, err := workloads.Resolve(c.Workload); err != nil {
			return nil, badRequest(err)
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cells := make([]api.SimResponse, len(list))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for idx, cell := range list {
		idx, ref, tech := idx, cell.Workload, cell.Technique
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pub *cellPub
			if j != nil {
				pub = &cellPub{j: j, cell: idx, bench: ref.Kernel, tech: tech}
			}
			resp, err := s.runCell(ctx, ref, tech, cfg, req.Sampling, admitQueue, pub)
			if err != nil {
				var (
					pe *PanicError
					le *cpu.LivelockError
				)
				if errors.As(err, &pe) || errors.As(err, &le) {
					// Isolated crash or wedge of this one cell: report
					// it in place and let the rest of the batch finish.
					key := CacheKeySampled(ref, tech, cfg, req.Sampling)
					cells[idx] = api.SimResponse{
						Key:   key,
						Error: &api.Error{Code: api.CodeInternal, Error: err.Error()},
					}
					if j != nil {
						done := j.cellDone()
						pub.publish(api.Event{Kind: api.EventCellDone, Key: key,
							Error: err.Error(), Done: done, Total: j.total})
					}
					return
				}
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
			cells[idx] = resp
			if j != nil {
				done := j.cellDone()
				pub.publish(api.Event{Kind: api.EventCellDone, Key: resp.Key,
					Cached: resp.Cached, Done: done, Total: j.total})
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	out := &api.BatchResponse{Cells: cells}
	for _, c := range cells {
		if c.Cached {
			out.CacheHits++
		}
		if c.Error != nil {
			out.Failed++
		}
	}
	return out, nil
}

// ---- handlers ----

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req api.SimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(fmt.Errorf("service: bad request body: %w", err)))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest(err))
		return
	}
	d, err := s.requestTimeout(r, req.TimeoutMS)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.adm.Acquire() {
		s.pool.shed.Add(1)
		writeError(w, fmt.Errorf("%w (admission limit)", errOverloaded))
		return
	}
	defer s.adm.Release()
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	resp, err := s.runCell(ctx, req.Workload, req.Technique, s.config(req.Config), req.Sampling, admitShed, nil)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			// The queue itself filled behind the admission gate: congestion
			// evidence the controller should cut on.
			s.adm.Overload()
		}
		writeError(w, err)
		return
	}
	s.adm.Success()
	writeJSONTimed(r.Context(), w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(fmt.Errorf("service: bad request body: %w", err)))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest(err))
		return
	}
	if h := r.Header.Get(api.HeaderIdempotencyKey); h != "" {
		req.IdempotencyKey = h
	}
	// Coarse admission: with the queue already full, a synchronous batch
	// would park its every cell behind it — shed the whole request up
	// front instead of stalling the connection. (Async batches return 202
	// immediately; their cells queue in the background by design.)
	if !req.Async && s.pool.Saturated() {
		s.pool.shed.Add(1)
		s.adm.Overload()
		writeError(w, errOverloaded)
		return
	}
	if req.Async {
		j, created := s.jobs.create(len(req.CellList()), req.IdempotencyKey, s.streams)
		if !created {
			// A retried submission: the original job answers it. A key
			// reused for a *different* batch is a client bug worth a loud
			// error rather than silently serving unrelated results.
			if j.total != len(req.CellList()) {
				writeError(w, badRequest(fmt.Errorf("service: idempotency key %q was used for a different batch (%d cells, resubmission has %d)",
					req.IdempotencyKey, j.total, len(req.CellList()))))
				return
			}
			writeJSON(w, http.StatusAccepted, api.BatchResponse{JobID: j.id, Deduped: true})
			return
		}
		// Async jobs outlive their submitting connection but not the
		// process: they derive from rootCtx so Abort (the in-process kill)
		// stops them at the next cancellation check. The accepting
		// request's trace identity is copied over explicitly — rootCtx
		// knows nothing of the connection — so the job's cell spans stay
		// children of the submitter's trace.
		jsp := obs.FromContext(r.Context()).StartChild("worker.job").Attr("job_id", j.id)
		j.setTrace(jsp.TraceID())
		ctx := obs.ContextWithSpan(
			obs.ContextWithRequestID(s.rootCtx, obs.RequestIDFrom(r.Context())), jsp)
		var cancel context.CancelFunc = func() {}
		if req.TimeoutMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
		}
		s.jobs.wg.Add(1)
		go func() {
			defer s.jobs.wg.Done()
			defer cancel()
			batch, err := s.runBatch(ctx, req, j)
			jsp.Fail(err).End()
			j.finish(batch, err)
			if j.bc != nil {
				// Terminal event, then close: subscribers drain whatever is
				// buffered (ending with job-done) and see a clean stream end.
				ev := api.Event{Kind: api.EventJobDone, Done: j.doneCount(), Total: j.total}
				if err != nil {
					ev.Error = err.Error()
				}
				ev.Cell = -1
				j.bc.Publish(ev)
				j.bc.Close()
			}
		}()
		writeJSON(w, http.StatusAccepted, api.BatchResponse{JobID: j.id})
		return
	}
	d, err := s.requestTimeout(r, req.TimeoutMS)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.adm.Acquire() {
		s.pool.shed.Add(1)
		writeError(w, fmt.Errorf("%w (admission limit)", errOverloaded))
		return
	}
	defer s.adm.Release()
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	batch, err := s.runBatch(ctx, req, nil)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.adm.Overload()
		}
		writeError(w, err)
		return
	}
	s.adm.Success()
	writeJSONTimed(r.Context(), w, http.StatusOK, *batch)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, api.Error{Code: api.CodeNotFound, Error: fmt.Sprintf("service: unknown job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the routing gate: liveness (/healthz) says "don't kill
// me", readiness says "send me work". They diverge exactly during a
// graceful drain — the process is alive finishing owned work but must not
// receive new cells. The unready answer is typed JSON (like every other
// error this server emits) so a prober can read the reason, not just the
// status.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, api.Error{Code: api.CodeShuttingDown, Error: "service: draining"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// Metrics snapshots the service counters. The cache pair is read under
// the cache lock and the clock is read once, so one snapshot is
// internally consistent (handleMetrics serves it as JSON or Prometheus
// text; see observe.go).
func (s *Server) Metrics() api.Metrics {
	now := time.Now()
	uptime := now.Sub(s.start).Seconds()
	hits, misses := s.cache.counters()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	insts := experiments.SimInstructions()
	mips := 0.0
	if uptime > 0 {
		mips = float64(insts-s.startInsts) / uptime / 1e6
	}
	active, finished := s.jobs.counts()
	sm := s.streams.Snapshot()
	admLimit, admInflight, admRejected := s.adm.Snapshot()
	var ckptQuarantined uint64
	if s.ckpts != nil {
		ckptQuarantined = s.ckpts.Quarantined()
	}
	return api.Metrics{
		UptimeSeconds:      uptime,
		Workers:            s.cfg.Workers,
		BusyWorkers:        s.pool.Busy(),
		QueueDepth:         s.pool.QueueDepth(),
		CacheEntries:       s.cache.Len(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheHitRate:       hitRate,
		SingleFlightShared: s.flight.Shared(),
		SimsCompleted:      s.simsDone.Load(),
		JobsActive:         active,
		JobsDone:           finished,
		SimInstructions:    insts,
		SimMIPS:            mips,

		AdmissionLimit:    admLimit,
		AdmissionInflight: admInflight,
		AdmissionRejected: admRejected,
		DeadlineRejected:  s.deadlineRejected.Load(),

		PanicsRecovered:     s.pool.Panics(),
		ShedTotal:           s.pool.Shed(),
		SingleFlightRetries: s.sfRetries.Load(),
		SpillQuarantined:    s.cache.Quarantined(),

		CheckpointsWritten:     s.ckptWritten.Load(),
		CheckpointsResumed:     s.ckptResumed.Load(),
		CheckpointWriteErrors:  s.ckptErrors.Load(),
		CheckpointsQuarantined: ckptQuarantined,
		WatchdogTrips:          s.watchdogTrips.Load(),

		RequestsTotal:   s.reqTotal.Load(),
		TracesStored:    s.traces.Len(),
		ObsSpans:        s.tracer.Len(),
		ObsSpansDropped: s.tracer.Dropped(),

		StreamSessionsActive:  sm.SessionsActive,
		StreamSessionsOpened:  sm.SessionsOpened,
		StreamSessionsExpired: sm.SessionsExpired,
		StreamEventsPublished: sm.EventsPublished,
		StreamEventsDropped:   sm.EventsDropped,
		StreamSessions:        sm.Sessions,
	}
}

// ---- flight recorder ----

// DumpFlight seals the span collector's flight record — the ring of the
// last N finished spans plus error events — to
// <CacheDir>/forensics/flight-<reason>-<µs>.json and returns the path.
// The payload is integrity-sealed like a checkpoint (payload + sha256
// footer; checkpoint.Unseal verifies), so a post-mortem can trust a dump
// that survived the crash it documents. Returns "" (and writes nothing)
// when tracing is disabled or no CacheDir is configured. cmd/dvrd calls
// this on SIGTERM; the watchdog and panic paths call it in-process.
func (s *Server) DumpFlight(reason string) string { return s.dumpFlight(reason) }

func (s *Server) dumpFlight(reason string) string {
	return dumpFlight(s.tracer, s.cfg.CacheDir, reason, s.logger)
}

// dumpFlight is the role-agnostic flight-recorder dump shared by the
// worker Server (rooted at CacheDir) and the cluster Frontend (rooted at
// LedgerDir). Best-effort by contract: a failed dump must never worsen
// the crash being documented, so every error path just returns "".
func dumpFlight(tracer *obs.Tracer, dir, reason string, logger *slog.Logger) string {
	if tracer == nil || dir == "" {
		return ""
	}
	fr := tracer.Flight(reason)
	payload, err := json.MarshalIndent(fr, "", "  ")
	if err != nil {
		return ""
	}
	fdir := filepath.Join(dir, "forensics")
	if err := os.MkdirAll(fdir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(fdir, fmt.Sprintf("flight-%s-%d.json", reason, fr.DumpedAtUS))
	if err := os.WriteFile(path, checkpoint.Seal(payload), 0o644); err != nil {
		return ""
	}
	if logger != nil {
		logger.Info("flight recorder dump",
			"reason", reason, "path", path, "spans", len(fr.Spans), "dropped", fr.Dropped)
	}
	return path
}

// ---- built-workload memoization ----

// baseCache memoizes built workload images by their ref identity (kernel +
// graph; the image does not depend on the ROI), bounded by an LRU. Every
// simulation runs on a copy-on-write Fork of the shared base — the same
// sharing discipline as experiments.RunAll — so a batch over one graph
// builds it once, not once per cell. Evicting a base while forks of it are
// running is safe: the forks hold their own references.
type baseCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	items map[string]*list.Element
}

type baseEntry struct {
	key  string
	once sync.Once
	w    *workloads.Workload
}

func newBaseCache(capacity int) *baseCache {
	if capacity < 1 {
		capacity = 1
	}
	return &baseCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// memoize wraps spec.Build to build the base image at most once per cache
// residency and hand out forks.
func (b *baseCache) memoize(spec workloads.Spec) workloads.Spec {
	ref := spec.Ref
	ref.ROI = 0
	keyBytes, err := json.Marshal(ref)
	if err != nil {
		return spec
	}
	entry := b.entry(string(keyBytes))
	build := spec.Build
	spec.Build = func() *workloads.Workload {
		entry.once.Do(func() { entry.w = build() })
		return entry.w.Fork()
	}
	return spec
}

func (b *baseCache) entry(key string) *baseEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.items[key]; ok {
		b.order.MoveToFront(el)
		return el.Value.(*baseEntry)
	}
	e := &baseEntry{key: key}
	b.items[key] = b.order.PushFront(e)
	for b.order.Len() > b.cap {
		el := b.order.Back()
		b.order.Remove(el)
		delete(b.items, el.Value.(*baseEntry).key)
	}
	return e
}
