package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"dvr/internal/cpu"
	"dvr/internal/experiments"
	"dvr/internal/graphgen"
	"dvr/internal/interp"
	"dvr/internal/isa"
	"dvr/internal/service/api"
	"dvr/internal/workloads"
)

// The tests register a trivial ALU-loop kernel: it builds in microseconds
// (no graph, no memory image) so tests spend their time exercising the
// service machinery, not the simulator, and an enormous ROI makes a
// conveniently slow job for deadline tests.
func init() {
	workloads.Register(workloads.Kernel{
		Name:       "svc-test-loop",
		DefaultROI: 10_000,
		Build: func(*graphgen.Graph) *workloads.Workload {
			b := isa.NewBuilder("svc-test-loop")
			b.Li(0, 0)
			b.Label("top")
			b.AddI(0, 0, 1)
			b.Jmp("top")
			// Skip must be nonzero: Frontend runs the interpreter for
			// Skip instructions, and Skip==0 means "to completion",
			// which never comes for this loop.
			return &workloads.Workload{Name: "svc-test-loop", Prog: b.MustBuild(), Mem: interp.NewMemory(), Skip: 1}
		},
	})
}

func loopRef(roi uint64) workloads.Ref {
	return workloads.Ref{Kernel: "svc-test-loop", ROI: roi}
}

func graphRef(roi uint64) workloads.Ref {
	return workloads.Ref{
		Kernel: "cc",
		Graph:  &graphgen.Params{Gen: graphgen.GenKronecker, Scale: 8, EdgeFactor: 4, Seed: 7, Name: "ST"},
		ROI:    roi,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestSimCacheHitIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.SimRequest{Workload: graphRef(8_000), Technique: "dvr"}

	var first, second api.SimResponse
	resp, body := postJSON(t, ts.URL+"/v1/sim", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first sim: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	resp, body = postJSON(t, ts.URL+"/v1/sim", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second sim: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	if first.Key == "" || first.Key != second.Key {
		t.Errorf("keys differ: %q vs %q", first.Key, second.Key)
	}
	a, _ := json.Marshal(first.Result.Canonical())
	b, _ := json.Marshal(second.Result.Canonical())
	if !bytes.Equal(a, b) {
		t.Errorf("cached result not byte-identical:\n%s\n%s", a, b)
	}
	if first.Result.SchemaVersion != cpu.ResultSchemaVersion {
		t.Errorf("result schema version = %d, want %d", first.Result.SchemaVersion, cpu.ResultSchemaVersion)
	}
}

func TestConcurrentIdenticalRequestsSingleFlight(t *testing.T) {
	const roi = 60_000
	srv, ts := newTestServer(t, Config{Workers: 4})
	before := experiments.SimInstructions()

	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, body := func() (*http.Response, []byte) {
				data, _ := json.Marshal(api.SimRequest{Workload: loopRef(roi), Technique: "ooo"})
				r, err := http.Post(ts.URL+"/v1/sim", "application/json", bytes.NewReader(data))
				if err != nil {
					return nil, nil
				}
				defer r.Body.Close()
				var buf bytes.Buffer
				buf.ReadFrom(r.Body)
				return r, buf.Bytes()
			}()
			if resp == nil || resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("sim failed: %v %s", resp, body)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// The decisive signal: 8 concurrent identical requests must cost at
	// most one simulation's worth of instructions (single-flight), not 8.
	delta := experiments.SimInstructions() - before
	if delta > roi+roi/2 {
		t.Errorf("simulated %d instructions for %d identical concurrent requests; want ~%d (single flight)", delta, n, roi)
	}
	m := srv.Metrics()
	if m.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", m.CacheEntries)
	}
}

func TestDeadlineExceededReturns504AndFreesWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Effectively unbounded job with a 100 ms deadline.
	resp, body := postJSON(t, ts.URL+"/v1/sim", api.SimRequest{
		Workload:  loopRef(4_000_000_000),
		Technique: "ooo",
		TimeoutMS: 100,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-exceeded request: %s (want 504): %s", resp.Status, body)
	}
	// With a single worker, this only succeeds if the cancelled simulation
	// actually released it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body = postJSON(t, ts.URL+"/v1/sim", api.SimRequest{Workload: loopRef(5_000), Technique: "ooo"})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("follow-up request hung: worker not freed after deadline")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request after timeout: %s: %s", resp.Status, body)
	}
}

func TestMalformedRequestsReturn400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []api.SimRequest{
		{Workload: loopRef(1000), Technique: "warp-drive"},          // unknown technique
		{Workload: workloads.Ref{Kernel: "nope"}, Technique: "ooo"}, // unknown kernel
		{Workload: workloads.Ref{Kernel: "bfs"}, Technique: "ooo"},  // graph kernel, no graph
		{Workload: workloads.Ref{Kernel: "svc-test-loop", Graph: &graphgen.Params{Gen: "bogus"}}, Technique: "ooo"},
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/sim", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %s, want 400: %s", i, resp.Status, body)
		}
	}
}

func TestBatchCacheAccountsEveryCell(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.BatchRequest{
		Workloads:  []workloads.Ref{loopRef(4_000), loopRef(6_000)},
		Techniques: []string{"ooo", "dvr"},
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: %s: %s", resp.Status, body)
	}
	var first api.BatchResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(first.Cells))
	}
	resp, body = postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second batch: %s: %s", resp.Status, body)
	}
	var second api.BatchResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != len(second.Cells) {
		t.Errorf("second batch cache hits = %d, want %d (every cell)", second.CacheHits, len(second.Cells))
	}
	for i := range first.Cells {
		if !reflect.DeepEqual(first.Cells[i].Result, second.Cells[i].Result) {
			t.Errorf("cell %d differs between batches", i)
		}
	}
}

func TestGracefulShutdownDrainsInFlightJobs(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/batch", api.BatchRequest{
		Workloads:  []workloads.Ref{loopRef(150_000), loopRef(250_000)},
		Techniques: []string{"ooo"},
		Async:      true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async batch: %s: %s", resp.Status, body)
	}
	var accepted api.BatchResponse
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.JobID == "" {
		t.Fatal("async batch returned no job id")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}

	httpResp, err := http.Get(ts.URL + "/v1/jobs/" + accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var status api.JobStatus
	if err := json.NewDecoder(httpResp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.State != api.JobDone {
		t.Errorf("after shutdown, job state = %q (error %q), want done: shutdown returned before draining", status.State, status.Error)
	}
	if status.Batch == nil || len(status.Batch.Cells) != 2 {
		t.Errorf("drained job missing results: %+v", status)
	}
}

func TestDiskSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(Config{CacheDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	req := api.SimRequest{Workload: loopRef(7_000), Technique: "ooo"}
	resp, body := postJSON(t, ts1.URL+"/v1/sim", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %s: %s", resp.Status, body)
	}
	var first api.SimResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	_ = srv1.Shutdown(context.Background())

	// A fresh server over the same spill directory answers from cache.
	srv2 := New(Config{CacheDir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())
	resp, body = postJSON(t, ts2.URL+"/v1/sim", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim after restart: %s: %s", resp.Status, body)
	}
	var second api.SimResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("restarted server did not answer from disk spill")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Error("disk-spilled result differs from original")
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	postJSON(t, ts.URL+"/v1/sim", api.SimRequest{Workload: loopRef(3_000), Technique: "ooo"})
	postJSON(t, ts.URL+"/v1/sim", api.SimRequest{Workload: loopRef(3_000), Technique: "ooo"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m api.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Workers != 2 {
		t.Errorf("workers = %d, want 2", m.Workers)
	}
	if m.CacheHits < 1 || m.CacheMisses < 1 {
		t.Errorf("cache counters not accounting: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
	if m.SimInstructions == 0 {
		t.Error("sim_instructions = 0 after a simulation")
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	cfg := cpu.DefaultConfig()
	base := CacheKey(loopRef(1000), "ooo", cfg)
	if CacheKey(loopRef(1000), "ooo", cfg) != base {
		t.Error("identical jobs produced different keys")
	}
	if CacheKey(loopRef(2000), "ooo", cfg) == base {
		t.Error("ROI not in the key")
	}
	if CacheKey(loopRef(1000), "dvr", cfg) == base {
		t.Error("technique not in the key")
	}
	if CacheKey(loopRef(1000), "ooo", cfg.WithROB(128)) == base {
		t.Error("config not in the key")
	}
	if CacheKey(graphRef(1000), "ooo", cfg) == base {
		t.Error("workload not in the key")
	}
}
