package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup collapses concurrent identical jobs: while a computation for
// a key is in flight, later arrivals for the same key wait for its result
// instead of computing again. The leader's context drives the computation;
// a follower whose own context expires first stops waiting (and gets its
// context error) without disturbing the flight. It is generic over the
// result type: the worker collapses simulations (cpu.Result), the frontend
// collapses routed cells (api.SimResponse).
type flightGroup[T any] struct {
	mu     sync.Mutex
	flying map[string]*flight[T]
	shared atomic.Uint64 // results delivered to followers
}

type flight[T any] struct {
	done chan struct{}
	res  T
	err  error
}

func newFlightGroup[T any]() *flightGroup[T] {
	return &flightGroup[T]{flying: make(map[string]*flight[T])}
}

// Do runs fn for key unless a flight for key is already in progress, in
// which case it waits for that flight. It returns fn's (or the flight's)
// result and whether this caller was a follower. A leader whose fn fails
// delivers the error to every follower; followers whose own context is
// still live retry once as a potential new leader (Server.runCell does
// this, counted at /metrics as single_flight_retries; the cache absorbs
// the common case where the leader succeeded).
func (g *flightGroup[T]) Do(ctx context.Context, key string, fn func() (T, error)) (res T, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flying[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			g.shared.Add(1)
			return f.res, true, f.err
		case <-ctx.Done():
			var zero T
			return zero, true, ctx.Err()
		}
	}
	f := &flight[T]{done: make(chan struct{})}
	g.flying[key] = f
	g.mu.Unlock()

	f.res, f.err = fn()
	g.mu.Lock()
	delete(g.flying, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}

// Shared returns how many results were delivered to followers.
func (g *flightGroup[T]) Shared() uint64 { return g.shared.Load() }
