package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dvr/internal/service/api"
	"dvr/internal/stream"
	"dvr/internal/trace"
)

// Live job streaming: every async batch job owns a stream.Broadcaster fed
// from three places — the batch runner (cell lifecycle), the per-cell
// trace hooks (interval telemetry and runahead episodes, on the sim
// goroutine), and the trace store (replayed series for cells answered
// from the cache or another request's single-flight leader). Subscribers
// attach over SSE at GET /v1/jobs/{id}/stream; the broadcaster's explicit
// policies (publish never blocks, drop-oldest with counters, TTL reap)
// are what let the simulation stay bit-identical under observation.

// cellPub carries one batch cell's streaming identity down through
// runCell into the simulation's trace hooks. A nil *cellPub (interactive
// /v1/sim, sync batches, checkpoint resume) publishes nothing.
type cellPub struct {
	j     *job
	cell  int
	bench string
	tech  string
}

// live reports whether events published through p can reach a stream.
func (p *cellPub) live() bool {
	return p != nil && p.j != nil && p.j.bc != nil
}

// publish stamps the cell identity onto ev and fans it out. Interval
// events also advance the job's live interval counter (JobStatus).
func (p *cellPub) publish(ev api.Event) {
	if !p.live() {
		return
	}
	ev.Cell = p.cell
	if ev.Bench == "" {
		ev.Bench = p.bench
	}
	if ev.Technique == "" {
		ev.Technique = p.tech
	}
	if ev.Kind == api.EventInterval {
		p.j.intervals.Add(1)
	}
	p.j.bc.Publish(ev)
}

// traceHooks returns the live OnInterval/OnEvent hooks for one cell, or
// zero hooks when the cell is unobserved (so an unstreamed simulation's
// recorder config is exactly what it was before streaming existed).
func (p *cellPub) traceHooks() (onInterval func(trace.Interval), onEvent func(trace.Event)) {
	if !p.live() {
		return nil, nil
	}
	onInterval = func(iv trace.Interval) {
		p.publish(api.Event{Kind: api.EventInterval, Interval: &iv})
	}
	onEvent = func(ev trace.Event) {
		if ev.Kind != trace.EvRunaheadSpawn {
			return
		}
		p.publish(api.Event{Kind: api.EventRunahead, Episode: &api.RunaheadEpisode{
			StartCycle: ev.Cycle,
			EndCycle:   ev.End,
			PC:         ev.PC,
			Lanes:      ev.Arg,
			Reason:     trace.ReasonString(ev.Arg2),
		}})
	}
	return onInterval, onEvent
}

// replayTrace publishes a cell's stored interval series to its job
// stream, marked Replayed: the cell was answered without running (cache
// hit) or ran under another request's flight, so its subscribers never
// saw live samples. The stored series is the same []trace.Interval the
// post-hoc /trace endpoint serves, so the streamed and stored views stay
// element-identical.
func (s *Server) replayTrace(p *cellPub, key string, cached bool) {
	if !p.live() || s.traces == nil {
		return
	}
	ivs, ok := s.traces.Get(key)
	if !ok {
		return
	}
	for i := range ivs {
		iv := ivs[i]
		p.publish(api.Event{Kind: api.EventInterval, Cached: cached, Replayed: true, Interval: &iv})
	}
}

// ---- SSE handler ----

// parseStreamOptions reads GET /v1/jobs/{id}/stream's query parameters
// (and the standard Last-Event-ID reconnect header, which wins over the
// query form) into api.StreamOptions.
func parseStreamOptions(r *http.Request) (api.StreamOptions, error) {
	q := r.URL.Query()
	var opts api.StreamOptions
	if raw := q.Get("kinds"); raw != "" {
		opts.Kinds = strings.Split(raw, ",")
	}
	if raw := q.Get("cell"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return opts, fmt.Errorf("service: bad cell %q: %w", raw, err)
		}
		opts.Cell = &n
	}
	if raw := q.Get("buffer"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return opts, fmt.Errorf("service: bad buffer %q: %w", raw, err)
		}
		opts.Buffer = n
	}
	if raw := q.Get("last_event_id"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("service: bad last_event_id %q: %w", raw, err)
		}
		opts.LastEventID = n
	}
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("service: bad Last-Event-ID header %q: %w", raw, err)
		}
		opts.LastEventID = n
	}
	return opts, opts.Validate()
}

// filterFor compiles StreamOptions into the session's event filter (nil
// when the subscription is unfiltered). A cell filter keeps job-scoped
// events (Cell < 0): a per-cell dashboard still needs to see job-done.
func filterFor(opts api.StreamOptions) func(api.Event) bool {
	if len(opts.Kinds) == 0 && opts.Cell == nil {
		return nil
	}
	var kinds map[string]bool
	if len(opts.Kinds) > 0 {
		kinds = make(map[string]bool, len(opts.Kinds))
		for _, k := range opts.Kinds {
			kinds[k] = true
		}
	}
	cell := opts.Cell
	return func(ev api.Event) bool {
		if kinds != nil && !kinds[ev.Kind] {
			return false
		}
		if cell != nil && ev.Cell >= 0 && ev.Cell != *cell {
			return false
		}
		return true
	}
}

// handleJobStream serves GET /v1/jobs/{id}/stream: the job's event feed
// as Server-Sent Events. Each frame carries the event's id (the SSE
// resume cursor — reconnecting with Last-Event-ID picks up from the
// replay window), its kind as the SSE event name, and the api.Event JSON
// as data. Idle periods are bridged with comment heartbeats so proxies
// do not reap the connection. The stream ends after the job's terminal
// event (job-done) has been delivered and the broadcaster closed.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	streamJob(w, r, s.jobs, s.cfg.StreamHeartbeat)
}

// streamJob is the role-agnostic SSE serving loop, shared by the worker
// Server and the cluster Frontend (the frontend republishes its workers'
// events into its own jobs' broadcasters, so subscribers see one stream
// regardless of which replica simulates which cell).
func streamJob(w http.ResponseWriter, r *http.Request, jobs *jobStore, hb time.Duration) {
	id := r.PathValue("id")
	j, ok := jobs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, api.Error{Code: api.CodeNotFound, Error: fmt.Sprintf("service: unknown job %q", id)})
		return
	}
	if j.bc == nil {
		writeJSON(w, http.StatusNotFound, api.Error{Code: api.CodeNotFound,
			Error: fmt.Sprintf("service: job %q has no stream", id)})
		return
	}
	opts, err := parseStreamOptions(r)
	if err != nil {
		writeError(w, badRequest(err))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, api.Error{Code: api.CodeInternal,
			Error: "service: response writer does not support streaming"})
		return
	}
	sess := j.bc.Subscribe(stream.SubOptions{
		After:  opts.LastEventID,
		Buffer: opts.Buffer,
		Filter: filterFor(opts),
	})
	defer sess.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		ctx, cancel := context.WithTimeout(r.Context(), hb)
		ev, err := sess.Next(ctx)
		cancel()
		switch {
		case err == nil:
			data, merr := json.Marshal(ev)
			if merr != nil {
				return
			}
			// json.Marshal output has no newlines, so one data: line holds
			// the whole event.
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Kind, data)
			fl.Flush()
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			// Quiet interval: heartbeat comment, keep the connection warm.
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case errors.Is(err, stream.ErrClosed):
			// Clean end: the job finished and every buffered event is out.
			return
		default:
			// Client gone, session reaped, or server shutdown.
			return
		}
	}
}

// ---- typed-error normalization ----

// codeForStatus maps a raw HTTP status to the api.Error code the typed
// failure model uses for it.
func codeForStatus(code int) string {
	switch {
	case code == http.StatusNotFound:
		return api.CodeNotFound
	case code >= 400 && code < 500:
		return api.CodeBadRequest
	default:
		return api.CodeInternal
	}
}

// errorNormalizer rewrites any non-2xx response that is not already
// typed JSON — in practice the ServeMux's built-in plain-text 404/405
// pages — into an api.Error body, so every error a client can receive
// from this server decodes the same way. Responses the handlers write
// themselves (always application/json) pass through untouched.
type errorNormalizer struct {
	http.ResponseWriter
	req         *http.Request
	wroteHeader bool
	swallow     bool // a synthesized body replaced the handler's
}

func (e *errorNormalizer) WriteHeader(code int) {
	if e.wroteHeader {
		return
	}
	e.wroteHeader = true
	ct := e.Header().Get("Content-Type")
	if code >= 400 && !strings.HasPrefix(ct, "application/json") {
		e.swallow = true
		e.Header().Set("Content-Type", "application/json")
		e.ResponseWriter.WriteHeader(code)
		body, _ := json.MarshalIndent(api.Error{
			Code:  codeForStatus(code),
			Error: fmt.Sprintf("service: %s %s: %s", e.req.Method, e.req.URL.Path, strings.ToLower(http.StatusText(code))),
		}, "", "  ")
		_, _ = e.ResponseWriter.Write(append(body, '\n'))
		return
	}
	e.ResponseWriter.WriteHeader(code)
}

func (e *errorNormalizer) Write(b []byte) (int, error) {
	if !e.wroteHeader {
		e.WriteHeader(http.StatusOK)
	}
	if e.swallow {
		// Pretend the handler's plain-text body was written; the typed one
		// already went out.
		return len(b), nil
	}
	return e.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so SSE works through the
// middleware stack.
func (e *errorNormalizer) Flush() {
	if f, ok := e.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// normalizeErrors wraps a handler in the errorNormalizer.
func normalizeErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&errorNormalizer{ResponseWriter: w, req: r}, r)
	})
}
