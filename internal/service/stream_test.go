package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dvr/internal/service/api"
	"dvr/internal/service/client"
	"dvr/internal/stream"
	"dvr/internal/trace"
	"dvr/internal/workloads"
)

// startAsyncBatch posts an async batch and returns its job id.
func startAsyncBatch(t *testing.T, url string, req api.BatchRequest) string {
	t.Helper()
	req.Async = true
	resp, body := postJSON(t, url+"/v1/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: %s: %s", resp.Status, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.JobID == "" {
		t.Fatal("async batch returned no job id")
	}
	return br.JobID
}

// waitJobDone polls the job until it leaves the running state.
func waitJobDone(t *testing.T, url, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := getBody(t, url+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: %s: %s", resp.Status, body)
		}
		var st api.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != api.JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 60s", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// collectStream drains a client.Stream to its clean end.
func collectStream(t *testing.T, c *client.Client, jobID string, opts api.StreamOptions) []api.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st := c.Stream(ctx, jobID, opts)
	defer st.Close()
	var out []api.Event
	for {
		ev, err := st.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("stream next: %v (after %d events)", err, len(out))
		}
		out = append(out, ev)
	}
}

// TestStreamMatchesPostHocTrace is the acceptance gate for live
// telemetry: the interval series a subscriber receives over SSE must be
// byte-identical (as JSON) to the series GET /v1/jobs/{id}/trace serves
// after the job finishes — same values, same order, nothing invented or
// dropped by the streaming path.
func TestStreamMatchesPostHocTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceIntervalEvery: 1000})
	c := client.New(ts.URL)
	jobID := startAsyncBatch(t, ts.URL, api.BatchRequest{
		Workloads:  []workloads.Ref{graphRef(8_000)},
		Techniques: []string{"ooo", "dvr"},
	})
	events := collectStream(t, c, jobID, api.StreamOptions{})
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}
	// Ids strictly increase; the stream ends with job-done.
	for i := 1; i < len(events); i++ {
		if events[i].ID <= events[i-1].ID {
			t.Fatalf("event ids not increasing: %d after %d", events[i].ID, events[i-1].ID)
		}
	}
	last := events[len(events)-1]
	if last.Kind != api.EventJobDone || last.Error != "" {
		t.Fatalf("stream did not end with a clean job-done: %+v", last)
	}
	// Regroup the streamed intervals per cell, in arrival order.
	streamed := map[int][]trace.Interval{}
	started := map[int]int{}
	for _, ev := range events {
		switch ev.Kind {
		case api.EventCellStarted:
			started[ev.Cell]++
		case api.EventInterval:
			if ev.Interval == nil {
				t.Fatalf("interval event without interval payload: %+v", ev)
			}
			if ev.Replayed {
				t.Fatalf("fresh cell streamed a replayed interval: %+v", ev)
			}
			streamed[ev.Cell] = append(streamed[ev.Cell], *ev.Interval)
		}
	}
	if len(started) != 2 {
		t.Fatalf("saw cell-started for %d cells, want 2", len(started))
	}
	// Post-hoc truth.
	resp, body := getBody(t, ts.URL+"/v1/jobs/"+jobID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %s: %s", resp.Status, body)
	}
	var jt api.JobTrace
	if err := json.Unmarshal(body, &jt); err != nil {
		t.Fatal(err)
	}
	if len(jt.Cells) != 2 {
		t.Fatalf("trace has %d cells, want 2", len(jt.Cells))
	}
	for i, cell := range jt.Cells {
		if cell.Missing || len(cell.Intervals) == 0 {
			t.Fatalf("cell %d has no stored trace", i)
		}
		want, err := json.Marshal(cell.Intervals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(streamed[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("cell %d: streamed series != stored series\nstreamed: %s\nstored:   %s", i, got, want)
		}
	}
}

// TestStreamBitIdentityUnderSubscribers: eight concurrent SSE
// subscribers watching a job must not change its figures — the batch
// results are byte-identical to the same batch on a fresh, unobserved
// server. This is the PR 5 bit-identity guarantee extended to streaming.
func TestStreamBitIdentityUnderSubscribers(t *testing.T) {
	req := api.BatchRequest{
		Workloads:  []workloads.Ref{graphRef(8_000)},
		Techniques: []string{"ooo", "dvr"},
	}

	// Unobserved baseline on its own server.
	_, tsA := newTestServer(t, Config{TraceIntervalEvery: 1000})
	respA, bodyA := postJSON(t, tsA.URL+"/v1/batch", req)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("baseline batch: %s: %s", respA.Status, bodyA)
	}
	var baseline api.BatchResponse
	if err := json.Unmarshal(bodyA, &baseline); err != nil {
		t.Fatal(err)
	}

	// Same batch, fresh server, eight live subscribers.
	_, tsB := newTestServer(t, Config{TraceIntervalEvery: 1000})
	c := client.New(tsB.URL)
	jobID := startAsyncBatch(t, tsB.URL, req)
	const subs = 8
	var wg sync.WaitGroup
	counts := make([]int, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i] = len(collectStream(t, c, jobID, api.StreamOptions{}))
		}(i)
	}
	wg.Wait()
	st := waitJobDone(t, tsB.URL, jobID)
	if st.State != api.JobDone || st.Batch == nil {
		t.Fatalf("observed job did not finish cleanly: %+v", st)
	}
	for i := range st.Batch.Cells {
		want, err := json.Marshal(baseline.Cells[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(st.Batch.Cells[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("cell %d: result drifted under 8 subscribers\ngot:  %s\nwant: %s", i, got, want)
		}
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("subscriber %d received no events", i)
		}
	}
}

// TestStalledSubscriberDropsOldestAccounted: a subscriber that never
// polls loses its oldest events (never the job's progress), the loss
// shows up in its per-session drop counter and at /metrics, and the job
// itself is completely unaffected.
func TestStalledSubscriberDropsOldestAccounted(t *testing.T) {
	srv, ts := newTestServer(t, Config{TraceIntervalEvery: 500})
	jobID := startAsyncBatch(t, ts.URL, api.BatchRequest{
		Workloads:  []workloads.Ref{loopRef(20_000)},
		Techniques: []string{"ooo"},
	})
	j, ok := srv.jobs.get(jobID)
	if !ok || j.bc == nil {
		t.Fatalf("job %s has no broadcaster", jobID)
	}
	// Two-slot buffer, never polled: everything past the first two events
	// is a drop (replayed history included — the policy is the policy).
	sess := j.bc.Subscribe(stream.SubOptions{Buffer: 2})
	defer sess.Close()

	st := waitJobDone(t, ts.URL, jobID)
	if st.State != api.JobDone {
		t.Fatalf("job failed under a stalled subscriber: %+v", st)
	}
	if sess.Dropped() == 0 {
		t.Fatal("stalled two-slot session recorded no drops")
	}
	m := srv.Metrics()
	if m.StreamEventsDropped == 0 {
		t.Error("metrics show no stream drops")
	}
	if m.StreamSessionsActive == 0 || len(m.StreamSessions) == 0 {
		t.Fatalf("metrics show no active stream sessions: %+v", m)
	}
	found := false
	for _, ss := range m.StreamSessions {
		if ss.JobID == jobID && ss.Dropped == sess.Dropped() {
			found = true
		}
	}
	if !found {
		t.Errorf("per-session drop counter not surfaced: %+v", m.StreamSessions)
	}
	// The same accounting, through the Prometheus exposition.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "dvrd_stream_session_dropped{") {
		t.Error("Prometheus exposition lacks per-session drop series")
	}
	if !strings.Contains(string(text), "dvrd_stream_events_dropped_total") {
		t.Error("Prometheus exposition lacks the drop total")
	}
}

// TestStreamResumeLastEventID exercises the SSE reconnect contract over
// real HTTP: a second GET with Last-Event-ID picks up exactly after the
// cursor, from the replay window.
func TestStreamResumeLastEventID(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceIntervalEvery: 1000})
	jobID := startAsyncBatch(t, ts.URL, api.BatchRequest{
		Workloads:  []workloads.Ref{loopRef(10_000)},
		Techniques: []string{"ooo"},
	})
	waitJobDone(t, ts.URL, jobID)

	ids := sseIDs(t, ts.URL+"/v1/jobs/"+jobID+"/stream", 0)
	if len(ids) < 3 {
		t.Fatalf("too few events to test resume: %v", ids)
	}
	cursor := ids[len(ids)/2]
	resumed := sseIDs(t, ts.URL+"/v1/jobs/"+jobID+"/stream", cursor)
	if len(resumed) == 0 || resumed[0] != cursor+1 {
		t.Fatalf("resume from %d restarted at %v, want %d", cursor, resumed, cursor+1)
	}
	if got, want := len(resumed), len(ids)-len(ids)/2-1; got != want {
		t.Errorf("resume delivered %d events, want %d", got, want)
	}
}

// sseIDs reads one full SSE stream (the job must already be done, so the
// server closes it after the drain) and returns the frame ids, resuming
// after cursor when nonzero.
func sseIDs(t *testing.T, url string, cursor uint64) []uint64 {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cursor > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(cursor, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var ids []uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			ids = append(ids, id)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestStreamHeartbeat: a quiet stream carries comment heartbeats so
// proxies and clients can tell a slow job from a dead connection.
func TestStreamHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamHeartbeat: 20 * time.Millisecond})
	// A deliberately slow job (huge ROI, no tracing -> no events) with a
	// short timeout so the test server can drain at cleanup.
	jobID := startAsyncBatch(t, ts.URL, api.BatchRequest{
		Workloads:  []workloads.Ref{loopRef(2_000_000_000)},
		Techniques: []string{"ooo"},
		TimeoutMS:  500,
	})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawHB := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ":") {
			sawHB = true
			break
		}
	}
	if !sawHB {
		t.Fatal("no heartbeat on a quiet stream")
	}
	waitJobDone(t, ts.URL, jobID)
}

// TestJobStatusLiveProgress: JobStatus carries the live interval count
// and subscriber count while the job runs (and after).
func TestJobStatusLiveProgress(t *testing.T) {
	srv, ts := newTestServer(t, Config{TraceIntervalEvery: 500})
	jobID := startAsyncBatch(t, ts.URL, api.BatchRequest{
		Workloads:  []workloads.Ref{loopRef(20_000)},
		Techniques: []string{"ooo"},
	})
	j, _ := srv.jobs.get(jobID)
	sess := j.bc.Subscribe(stream.SubOptions{})
	defer sess.Close()
	st := waitJobDone(t, ts.URL, jobID)
	if st.Intervals == 0 {
		t.Errorf("job status reports no intervals: %+v", st)
	}
	if st.Subscribers != 1 {
		t.Errorf("job status reports %d subscribers, want 1", st.Subscribers)
	}
}

// TestStreamTypedErrors: every non-2xx body this server can produce is a
// typed api.Error — including the mux's own 404/405 pages and the stream
// endpoint's validation failures.
func TestStreamTypedErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		method string
		path   string
		status int
		code   string
	}{
		{"unknown job stream", http.MethodGet, "/v1/jobs/nope/stream", http.StatusNotFound, api.CodeNotFound},
		{"unknown job status", http.MethodGet, "/v1/jobs/nope", http.StatusNotFound, api.CodeNotFound},
		{"unknown route", http.MethodGet, "/v1/nope", http.StatusNotFound, api.CodeNotFound},
		{"wrong method", http.MethodGet, "/v1/sim", http.StatusMethodNotAllowed, api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content type %q, want JSON (%s)", ct, body)
			}
			var ae api.Error
			if err := json.Unmarshal(body, &ae); err != nil {
				t.Fatalf("body is not a typed error: %v (%s)", err, body)
			}
			if ae.Code != tc.code {
				t.Errorf("code %q, want %q", ae.Code, tc.code)
			}
			if ae.Error == "" {
				t.Error("typed error has no message")
			}
		})
	}
	t.Run("bad stream options", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{})
		jobID := startAsyncBatch(t, ts.URL, api.BatchRequest{
			Workloads: []workloads.Ref{loopRef(5_000)}, Techniques: []string{"ooo"},
		})
		_ = srv
		resp, body := getBody(t, ts.URL+"/v1/jobs/"+jobID+"/stream?kinds=bogus")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
		}
		var ae api.Error
		if err := json.Unmarshal(body, &ae); err != nil || ae.Code != api.CodeBadRequest {
			t.Fatalf("bad options not a typed bad_request: %v %s", err, body)
		}
		waitJobDone(t, ts.URL, jobID)
	})
}

// TestStreamCachedCellReplays: a batch whose cells are already cached
// still streams each cell's stored interval series, marked replayed, so
// a late dashboard sees the same telemetry a live one did.
func TestStreamCachedCellReplays(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceIntervalEvery: 1000})
	c := client.New(ts.URL)
	req := api.BatchRequest{Workloads: []workloads.Ref{loopRef(10_000)}, Techniques: []string{"ooo"}}

	first := startAsyncBatch(t, ts.URL, req)
	firstEvents := collectStream(t, c, first, api.StreamOptions{})

	second := startAsyncBatch(t, ts.URL, req)
	secondEvents := collectStream(t, c, second, api.StreamOptions{})

	var live, replayed []trace.Interval
	for _, ev := range firstEvents {
		if ev.Kind == api.EventInterval {
			live = append(live, *ev.Interval)
		}
	}
	sawReplay := false
	for _, ev := range secondEvents {
		if ev.Kind == api.EventInterval {
			if !ev.Replayed || !ev.Cached {
				t.Fatalf("cached cell streamed a non-replayed interval: %+v", ev)
			}
			sawReplay = true
			replayed = append(replayed, *ev.Interval)
		}
		if ev.Kind == api.EventCellDone && !ev.Cached {
			t.Fatalf("second run's cell not served from cache: %+v", ev)
		}
	}
	if !sawReplay {
		t.Fatal("cached cell streamed no replayed intervals")
	}
	want, _ := json.Marshal(live)
	got, _ := json.Marshal(replayed)
	if string(got) != string(want) {
		t.Errorf("replayed series != live series\nreplayed: %s\nlive:     %s", got, want)
	}
}

// TestStreamCellFilter: a per-cell subscription sees only that cell's
// events plus the job-scoped terminal event.
func TestStreamCellFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceIntervalEvery: 1000})
	c := client.New(ts.URL)
	jobID := startAsyncBatch(t, ts.URL, api.BatchRequest{
		Workloads:  []workloads.Ref{loopRef(10_000)},
		Techniques: []string{"ooo", "dvr"},
	})
	cell := 1
	events := collectStream(t, c, jobID, api.StreamOptions{Cell: &cell})
	if len(events) == 0 {
		t.Fatal("filtered stream delivered nothing")
	}
	for _, ev := range events {
		if ev.Cell >= 0 && ev.Cell != cell {
			t.Fatalf("cell filter leaked cell %d: %+v", ev.Cell, ev)
		}
	}
	if last := events[len(events)-1]; last.Kind != api.EventJobDone {
		t.Fatalf("filtered stream missing job-done: last = %+v", last)
	}
}
