package service

import (
	"container/list"
	"encoding/json"
	"path/filepath"
	"sync"

	"dvr/internal/faults"
	"dvr/internal/trace"
)

// traceStore holds per-cell interval telemetry keyed by the cell's cache
// key: a bounded in-memory LRU with an optional best-effort disk spill
// under <cacheDir>/traces/<key>.json, mirroring the result cache's
// discipline (evicted or restarted-over entries come back from disk; a
// corrupt or missing file is a miss, never an error). Telemetry is
// observational, so nothing here seals or quarantines — the worst a bad
// byte can do is make a trace unavailable.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *traceEntry
	items map[string]*list.Element
	dir   string
	fs    faults.FS
}

type traceEntry struct {
	key string
	ivs []trace.Interval
}

func newTraceStore(capacity int, dir string, fsys faults.FS) *traceStore {
	if capacity < 1 {
		capacity = 1
	}
	if fsys == nil {
		fsys = faults.OS()
	}
	if dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			dir = ""
		}
	}
	return &traceStore{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
		dir:   dir,
		fs:    fsys,
	}
}

// Put stores one cell's interval series, in memory and (best-effort) on
// disk.
func (t *traceStore) Put(key string, ivs []trace.Interval) {
	if t == nil {
		return
	}
	t.admit(key, ivs)
	t.writeSpill(key, ivs)
}

// Get returns the stored series for key, consulting memory then disk.
func (t *traceStore) Get(key string) ([]trace.Interval, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	if el, ok := t.items[key]; ok {
		t.order.MoveToFront(el)
		ivs := el.Value.(*traceEntry).ivs
		t.mu.Unlock()
		return ivs, true
	}
	t.mu.Unlock()
	if ivs, ok := t.readSpill(key); ok {
		t.admit(key, ivs)
		return ivs, true
	}
	return nil, false
}

// Len returns the number of in-memory entries (nil-safe for /metrics).
func (t *traceStore) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}

func (t *traceStore) admit(key string, ivs []trace.Interval) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		el.Value.(*traceEntry).ivs = ivs
		t.order.MoveToFront(el)
		return
	}
	t.items[key] = t.order.PushFront(&traceEntry{key: key, ivs: ivs})
	for t.order.Len() > t.cap {
		el := t.order.Back()
		t.order.Remove(el)
		delete(t.items, el.Value.(*traceEntry).key)
	}
}

func (t *traceStore) spillPath(key string) string {
	return filepath.Join(t.dir, key+".json")
}

func (t *traceStore) readSpill(key string) ([]trace.Interval, bool) {
	if t.dir == "" {
		return nil, false
	}
	data, err := t.fs.ReadFile(t.spillPath(key))
	if err != nil {
		return nil, false
	}
	var ivs []trace.Interval
	if err := json.Unmarshal(data, &ivs); err != nil {
		return nil, false
	}
	return ivs, true
}

func (t *traceStore) writeSpill(key string, ivs []trace.Interval) {
	if t.dir == "" {
		return
	}
	data, err := json.Marshal(ivs)
	if err != nil {
		return
	}
	tmp, err := t.fs.CreateTemp(t.dir, key+".*.tmp")
	if err != nil {
		return
	}
	if err := t.fs.WriteFile(tmp, data, 0o644); err != nil {
		_ = t.fs.Remove(tmp)
		return
	}
	if err := t.fs.Rename(tmp, t.spillPath(key)); err != nil {
		_ = t.fs.Remove(tmp)
	}
}
