package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labelled values as a horizontal ASCII bar chart, the
// form the dvrbench figures use alongside their tables.
type BarChart struct {
	Title string
	Width int // bar width in characters (default 40)
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart returns a chart with the given title.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 40} }

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) { c.rows = append(c.rows, barRow{label, value}) }

// String renders the chart; bars are scaled to the maximum value. Negative
// values clamp to a zero-width bar but are flagged in the value column
// (a silently empty bar reads as zero), and NaN values render as "NaN"
// rather than poisoning the scale.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	labelW := 0
	for _, r := range c.rows {
		if r.value > maxVal { // NaN compares false: it never sets the scale
			maxVal = r.value
		}
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for _, r := range c.rows {
		switch {
		case math.IsNaN(r.value):
			fmt.Fprintf(&b, "%-*s |%s NaN\n", labelW, r.label, strings.Repeat(" ", width))
		case r.value < 0:
			fmt.Fprintf(&b, "%-*s |%s %.3f (<0, clamped)\n", labelW, r.label,
				strings.Repeat(" ", width), r.value)
		default:
			n := int(r.value / maxVal * float64(width))
			if n > width {
				n = width
			}
			if r.value > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&b, "%-*s |%s%s %.3f\n", labelW, r.label,
				strings.Repeat("#", n), strings.Repeat(" ", width-n), r.value)
		}
	}
	return b.String()
}

// sparkGlyphs are the eight block heights of a unicode sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a one-line unicode sparkline scaled to
// [min, max]. NaN values render as a space; a flat series renders at the
// lowest glyph.
func Sparkline(xs []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	var b strings.Builder
	for _, x := range xs {
		switch {
		case math.IsNaN(x):
			b.WriteByte(' ')
		case hi == lo:
			b.WriteRune(sparkGlyphs[0])
		default:
			n := int((x - lo) / (hi - lo) * float64(len(sparkGlyphs)))
			if n >= len(sparkGlyphs) {
				n = len(sparkGlyphs) - 1
			}
			if n < 0 {
				n = 0
			}
			b.WriteRune(sparkGlyphs[n])
		}
	}
	return b.String()
}
