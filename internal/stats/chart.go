package stats

import (
	"fmt"
	"strings"
)

// BarChart renders labelled values as a horizontal ASCII bar chart, the
// form the dvrbench figures use alongside their tables.
type BarChart struct {
	Title string
	Width int // bar width in characters (default 40)
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart returns a chart with the given title.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 40} }

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) { c.rows = append(c.rows, barRow{label, value}) }

// String renders the chart; bars are scaled to the maximum value.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	labelW := 0
	for _, r := range c.rows {
		if r.value > maxVal {
			maxVal = r.value
		}
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for _, r := range c.rows {
		n := int(r.value / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		if r.value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.3f\n", labelW, r.label,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), r.value)
	}
	return b.String()
}
