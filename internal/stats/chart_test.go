package stats

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// Satellite coverage for the BarChart edge cases that used to misrender:
// negative values silently drew as zero and NaN poisoned the scale.

func TestBarChartNegativeValueIsFlagged(t *testing.T) {
	c := NewBarChart("neg")
	c.Add("good", 2.0)
	c.Add("bad", -1.5)
	out := c.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want title + 2 rows:\n%s", len(lines), out)
	}
	bad := lines[2]
	if strings.Contains(bad, "#") {
		t.Errorf("negative row drew a bar: %q", bad)
	}
	if !strings.Contains(bad, "(<0, clamped)") {
		t.Errorf("negative row not flagged: %q", bad)
	}
	// The negative value must not shrink or grow the positive row's bar.
	if !strings.Contains(lines[1], "#") {
		t.Errorf("positive row lost its bar: %q", lines[1])
	}
}

func TestBarChartNaN(t *testing.T) {
	c := NewBarChart("nan")
	c.Add("nan", math.NaN())
	c.Add("one", 1.0)
	out := c.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[1], "NaN") {
		t.Errorf("NaN row not labelled: %q", lines[1])
	}
	if strings.Contains(lines[1], "#") {
		t.Errorf("NaN row drew a bar: %q", lines[1])
	}
	// NaN must not poison the scale: the 1.0 row is the maximum and gets a
	// full-width bar.
	if got := strings.Count(lines[2], "#"); got != 40 {
		t.Errorf("scale poisoned by NaN: value-1.0 bar is %d chars, want 40", got)
	}
}

func TestBarChartAllZeroOrNegative(t *testing.T) {
	c := NewBarChart("zero")
	c.Add("a", 0)
	c.Add("b", -2)
	out := c.String() // must not divide by zero or panic
	if !strings.Contains(out, "0.000") || !strings.Contains(out, "(<0, clamped)") {
		t.Errorf("unexpected render:\n%s", out)
	}
}

func TestBarChartOverMaxClamps(t *testing.T) {
	// Width guard: a value equal to the max renders exactly Width chars.
	c := NewBarChart("")
	c.Width = 10
	c.Add("x", 5)
	out := c.String()
	if got := strings.Count(out, "#"); got != 10 {
		t.Errorf("max-value bar is %d chars, want 10:\n%s", got, out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got := utf8.RuneCountInString(s); got != 8 {
		t.Fatalf("sparkline has %d runes, want 8: %q", got, s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("min/max glyphs wrong: %q", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("monotone series rendered non-monotone: %q", s)
		}
	}
}

func TestSparklineFlatAndNaN(t *testing.T) {
	if s := Sparkline([]float64{2, 2, 2}); s != "▁▁▁" {
		t.Errorf("flat series = %q, want lowest glyphs", s)
	}
	s := Sparkline([]float64{1, math.NaN(), 3})
	runes := []rune(s)
	if len(runes) != 3 || runes[1] != ' ' {
		t.Errorf("NaN not rendered as space: %q", s)
	}
	if s := Sparkline(nil); s != "" {
		t.Errorf("empty series = %q, want empty", s)
	}
}
