// Package stats provides the small numeric helpers the evaluation harness
// uses: harmonic and geometric means, normalization, and fixed-width table
// rendering for the paper-style result rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs (the paper's summary metric
// for speedups). Zero or negative entries are ignored; it returns 0 for an
// empty input. A NaN entry (the sentinel for a degenerate run, see
// experiments.Speedup) propagates: the mean is NaN rather than a silently
// skewed number.
func HarmonicMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
		if x > 0 {
			sum += 1 / x
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// GeoMean returns the geometric mean of the positive entries of xs.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (Bessel-corrected,
// n-1 denominator): the spread estimator the sampled-simulation error
// model uses over per-phase replicate measurements. It returns 0 for
// fewer than two samples, where spread is undefined.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// tTable95 holds two-sided 95% critical values of Student's t for small
// degrees of freedom (index = df, starting at df=1). Beyond the table the
// normal approximation (1.96) is within 1% and is used instead.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% critical value of Student's t with df
// degrees of freedom (1.96, the normal value, for df beyond the table or
// df <= 0 — the latter only arises for degenerate inputs the callers
// already guard).
func TCrit95(df int) float64 {
	if df >= 1 && df < len(tTable95) {
		return tTable95[df]
	}
	return 1.96
}

// CI95 returns the half-width of the two-sided 95% confidence interval on
// the mean of xs, using Student's t for small samples. Fewer than two
// samples carry no spread information; the half-width is 0 (callers
// report it as "no interval" rather than false precision).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return TCrit95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// MeanCI95 returns the mean of xs together with its 95% confidence
// half-width (see CI95).
func MeanCI95(xs []float64) (mean, half float64) {
	return Mean(xs), CI95(xs)
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Table renders rows of labelled values as a fixed-width text table, the
// output format of cmd/dvrbench.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, float64 with %.3g
// unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; a convenience for
// deterministic iteration in reports.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
