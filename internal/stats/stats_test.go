package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Errorf("HM(1,1,1) = %f", got)
	}
	if got := HarmonicMean([]float64{2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("HM(2,2) = %f", got)
	}
	// HM of {1, 3} = 2/(1 + 1/3) = 1.5
	if got := HarmonicMean([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("HM(1,3) = %f", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HM(nil) = %f", got)
	}
	// Non-positive entries are ignored.
	if got := HarmonicMean([]float64{2, 0, -1, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("HM with junk = %f", got)
	}
}

// TestMeanInequality: HM <= GM <= AM for positive inputs.
func TestMeanInequality(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		hm, gm, am := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		const eps = 1e-9
		return hm <= gm*(1+eps) && gm <= am*(1+eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GM(2,8) = %f", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GM(nil) = %f", got)
	}
}

func TestMeanAndMax(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %f", got)
	}
	if got := Max([]float64{1, 5, 3}); got != 5 {
		t.Errorf("Max = %f", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-input means must be 0")
	}
}

func TestStdDev(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 0},
		{"constant", []float64{3, 3, 3, 3}, 0},
		{"pair", []float64{1, 3}, math.Sqrt2},                               // var = ((1)^2+(1)^2)/1 = 2
		{"classic", []float64{2, 4, 4, 4, 5, 5, 7, 9}, math.Sqrt(32.0 / 7)}, // sample variance
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := StdDev(c.in); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("StdDev(%v) = %g, want %g", c.in, got, c.want)
			}
		})
	}
}

func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303},
		{9, 2.262},
		{30, 2.042},
		{31, 1.96}, // beyond the table: normal approximation
		{1000, 1.96},
		{0, 1.96}, // degenerate df falls back to normal
	}
	for _, c := range cases {
		if got := TCrit95(c.df); got != c.want {
			t.Errorf("TCrit95(%d) = %g, want %g", c.df, got, c.want)
		}
	}
}

func TestCI95(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0}, // no spread information
		{"constant", []float64{2, 2, 2}, 0},
		// n=2: t(1) * s/sqrt(2) = 12.706 * sqrt(2)/sqrt(2) = 12.706
		{"pair", []float64{1, 3}, 12.706},
		// n=5, s=1: 2.776 / sqrt(5)
		{"five", []float64{-1.2649110640673518, -0.6324555320336759, 0, 0.6324555320336759, 1.2649110640673518}, 2.776 / math.Sqrt(5)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := CI95(c.in); math.Abs(got-c.want) > 1e-9 {
				t.Errorf("CI95(%v) = %g, want %g", c.in, got, c.want)
			}
		})
	}
	// The interval tightens as the sample grows (same per-sample spread).
	small := CI95([]float64{1, 3, 1, 3})
	large := CI95([]float64{1, 3, 1, 3, 1, 3, 1, 3, 1, 3, 1, 3})
	if large >= small {
		t.Errorf("CI95 did not tighten with more samples: n=4 %g vs n=12 %g", small, large)
	}
	mean, half := MeanCI95([]float64{1, 3})
	if mean != 2 || half != CI95([]float64{1, 3}) {
		t.Errorf("MeanCI95 = (%g, %g)", mean, half)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "1.500", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("demo")
	c.Add("a", 2)
	c.Add("bb", 1)
	c.Add("c", 0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 40)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 20 {
		t.Errorf("half bar = %d hashes", strings.Count(lines[2], "#"))
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Errorf("zero bar rendered hashes: %q", lines[3])
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := NewBarChart("")
	if c.String() != "" {
		t.Errorf("empty chart output: %q", c.String())
	}
}
