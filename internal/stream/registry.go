package stream

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvr/internal/service/api"
)

// Config sizes a Registry. Zero values mean the documented defaults.
type Config struct {
	// ReplayEntries bounds each job's replay ring (the Last-Event-ID
	// resume window); 0 means 4096.
	ReplayEntries int
	// SessionBuffer is the default per-session delivery buffer; 0 means
	// 1024. Subscribers may request less (never more) per session.
	SessionBuffer int
	// SessionTTL reaps sessions not polled for this long; 0 means 60s.
	SessionTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.ReplayEntries <= 0 {
		c.ReplayEntries = 4096
	}
	if c.SessionBuffer <= 0 {
		c.SessionBuffer = 1024
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 60 * time.Second
	}
	return c
}

// Registry owns the broadcasters of every job on one server plus the TTL
// janitor that reaps abandoned sessions. Construct with NewRegistry; call
// Close on server shutdown.
type Registry struct {
	replayEntries int
	sessionBuffer int
	sessionTTL    time.Duration

	mu       sync.Mutex
	jobs     map[string]*Broadcaster
	closed   bool
	stopOnce sync.Once
	stop     chan struct{}

	seq          atomic.Uint64 // session id source
	opened       atomic.Uint64
	expired      atomic.Uint64
	published    atomic.Uint64
	droppedTotal atomic.Uint64
}

// NewRegistry builds a registry and starts its session janitor.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	r := &Registry{
		replayEntries: cfg.ReplayEntries,
		sessionBuffer: cfg.SessionBuffer,
		sessionTTL:    cfg.SessionTTL,
		jobs:          make(map[string]*Broadcaster),
		stop:          make(chan struct{}),
	}
	go r.janitor()
	return r
}

// Create registers a broadcaster for jobID (idempotent: an existing one
// is returned, so a job and its early subscribers cannot race).
func (r *Registry) Create(jobID string) *Broadcaster {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.jobs[jobID]; ok {
		return b
	}
	b := newBroadcaster(jobID, r.replayEntries, r)
	if !r.closed {
		r.jobs[jobID] = b
	}
	return b
}

// CreateAt registers a broadcaster for jobID whose event ids start at
// startID instead of 1 — how a recovered job keeps its SSE ids strictly
// increasing across frontend generations: each reboot re-creates the
// broadcaster one epoch up, so a subscriber resuming with a pre-crash
// Last-Event-ID never sees an id collision with post-crash events.
// Idempotent like Create (an existing broadcaster keeps its sequence).
func (r *Registry) CreateAt(jobID string, startID uint64) *Broadcaster {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.jobs[jobID]; ok {
		return b
	}
	b := newBroadcaster(jobID, r.replayEntries, r)
	if startID > 1 {
		b.nextID = startID
	}
	if !r.closed {
		r.jobs[jobID] = b
	}
	return b
}

// Get looks up the broadcaster of jobID.
func (r *Registry) Get(jobID string) (*Broadcaster, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.jobs[jobID]
	return b, ok
}

// Close shuts the registry down: every broadcaster closes (draining
// subscribers), the janitor stops, and future Creates return detached
// broadcasters. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	bs := make([]*Broadcaster, 0, len(r.jobs))
	for _, b := range r.jobs {
		bs = append(bs, b)
	}
	r.mu.Unlock()
	for _, b := range bs {
		b.Close()
	}
	r.stopOnce.Do(func() { close(r.stop) })
}

// janitor reaps sessions that idled past the TTL. It wakes a few times
// per TTL so a reap happens at most ~1.25 TTLs after the last poll.
func (r *Registry) janitor() {
	tick := r.sessionTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-r.sessionTTL)
		for _, b := range r.broadcasters() {
			b.mu.Lock()
			var stale []*Session
			for s := range b.sessions {
				if s.idleSince().Before(cutoff) {
					stale = append(stale, s)
				}
			}
			b.mu.Unlock()
			for _, s := range stale {
				s.expire()
				r.expired.Add(1)
			}
		}
	}
}

func (r *Registry) broadcasters() []*Broadcaster {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Broadcaster, 0, len(r.jobs))
	for _, b := range r.jobs {
		out = append(out, b)
	}
	return out
}

// Metrics is the registry's accounting snapshot (api.Metrics source).
type Metrics struct {
	SessionsActive  int
	SessionsOpened  uint64
	SessionsExpired uint64
	EventsPublished uint64
	EventsDropped   uint64
	Sessions        []api.StreamSession
}

// Snapshot collects the registry counters and the per-session accounting
// of every attached session (sorted by session id via the id sequence —
// map iteration order is hidden by the per-session ids themselves).
func (r *Registry) Snapshot() Metrics {
	m := Metrics{
		SessionsOpened:  r.opened.Load(),
		SessionsExpired: r.expired.Load(),
		EventsPublished: r.published.Load(),
		EventsDropped:   r.droppedTotal.Load(),
	}
	now := time.Now()
	for _, b := range r.broadcasters() {
		b.mu.Lock()
		sessions := make([]*Session, 0, len(b.sessions))
		for s := range b.sessions {
			sessions = append(sessions, s)
		}
		b.mu.Unlock()
		for _, s := range sessions {
			s.mu.Lock()
			m.Sessions = append(m.Sessions, api.StreamSession{
				ID:         fmt.Sprintf("sess-%d", s.id),
				JobID:      b.jobID,
				Delivered:  s.delivered,
				Dropped:    s.dropped,
				AgeSeconds: now.Sub(s.opened).Seconds(),
			})
			s.mu.Unlock()
			m.SessionsActive++
		}
	}
	sort.Slice(m.Sessions, func(i, j int) bool { return m.Sessions[i].ID < m.Sessions[j].ID })
	return m
}
