package stream

import (
	"context"
	"sync"
	"time"

	"dvr/internal/service/api"
)

// Session is one subscriber's view of a job stream: a bounded ring of
// undelivered events with an explicit drop-oldest overflow policy, a TTL,
// and per-session delivery/drop accounting. One goroutine consumes a
// session (Next); any number may publish into it through the broadcaster.
type Session struct {
	b   *Broadcaster
	id  uint64
	ttl time.Duration

	mu        sync.Mutex
	buf       []api.Event // delivery ring
	head      int         // index of the oldest buffered event
	n         int         // buffered count
	dropped   uint64      // events lost to the overflow policy
	delivered uint64      // events handed to the consumer
	lastID    uint64      // highest event id enqueued (gap detection)
	closed    bool        // broadcaster finished; drain then ErrClosed
	expired   bool        // reaped; ErrExpired immediately
	lastPoll  time.Time   // last Next call (TTL clock)
	opened    time.Time

	filter func(api.Event) bool
	notify chan struct{} // cap 1; kicked on enqueue/close/expire
}

// enqueue appends ev to the delivery ring, evicting the oldest buffered
// event when full (counted in dropped). Called with b.mu held, so the
// per-session order matches publish order exactly.
func (s *Session) enqueue(ev api.Event) {
	if s.filter != nil && !s.filter(ev) {
		return
	}
	s.mu.Lock()
	if s.closed || s.expired {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		// Drop-oldest: the freshest events are the valuable ones for a
		// live view, and the replay window covers re-reading history.
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		if s.b != nil && s.b.reg != nil {
			s.b.reg.droppedTotal.Add(1)
		}
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.lastID = ev.ID
	s.mu.Unlock()
	s.kick()
}

func (s *Session) kick() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next returns the oldest undelivered event, blocking until one arrives,
// the stream ends (ErrClosed), the session is reaped (ErrExpired), or ctx
// is done. It is the TTL heartbeat: each call refreshes the session's
// idle clock.
func (s *Session) Next(ctx context.Context) (api.Event, error) {
	for {
		s.mu.Lock()
		s.lastPoll = time.Now()
		if s.n > 0 {
			ev := s.buf[s.head]
			s.buf[s.head] = api.Event{} // release references
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.delivered++
			s.mu.Unlock()
			return ev, nil
		}
		expired, closed := s.expired, s.closed
		s.mu.Unlock()
		if expired {
			return api.Event{}, ErrExpired
		}
		if closed {
			return api.Event{}, ErrClosed
		}
		select {
		case <-ctx.Done():
			return api.Event{}, ctx.Err()
		case <-s.notify:
		}
	}
}

// Dropped reports how many events this session lost to the drop-oldest
// policy so far.
func (s *Session) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Delivered reports how many events this session has handed its consumer.
func (s *Session) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// LastEventID reports the highest event id enqueued into this session —
// the consumer's resume cursor after a drop gap.
func (s *Session) LastEventID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastID
}

// Close detaches the session from its broadcaster and releases its
// buffer. Idempotent; safe concurrently with publishes.
func (s *Session) Close() {
	if s.b != nil {
		s.b.drop(s)
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.kick()
}

// markClosed flags the end of the stream without discarding buffered
// events: the consumer drains what is left, then gets ErrClosed.
func (s *Session) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.kick()
}

// expire reaps an idle session: detach, mark, and wake the consumer (if
// one is still blocked, it gets ErrExpired).
func (s *Session) expire() {
	if s.b != nil {
		s.b.drop(s)
	}
	s.mu.Lock()
	s.expired = true
	s.mu.Unlock()
	s.kick()
}

// idleSince reports the last poll time (janitor use).
func (s *Session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastPoll
}
