// Package stream is dvrd's fan-out layer: it takes the event feed of one
// simulation job (interval telemetry, runahead episodes, cell lifecycle)
// and broadcasts it to many concurrent subscribers without ever letting a
// subscriber slow the simulation down.
//
// The design is one Broadcaster per job and one Session per subscriber,
// with three explicit policies:
//
//   - Publish never blocks. The publisher (a simulation goroutine via the
//     trace hooks, or the batch runner) takes a mutex, stamps the event
//     with the job's next sequence id, appends it to a bounded replay ring,
//     and enqueues it on every session's bounded buffer. Total work is
//     O(sessions); no channel send can park the simulator behind a stalled
//     TCP connection. This is what preserves the PR 5 bit-identity and
//     zero-alloc-when-disabled guarantees: the simulation cannot observe
//     its observers.
//
//   - Backpressure is drop-oldest, and it is accounted. A session whose
//     reader cannot keep up loses its oldest undelivered events first
//     (the newest data is the live data a dashboard wants) and counts
//     every loss in a per-session drop counter surfaced at /metrics.
//
//   - Sessions expire. Every session carries a TTL; a subscriber that
//     stops polling without closing (a wedged proxy, a laptop lid) is
//     reaped by the registry's janitor so its buffer memory comes back.
//
// Event ids are per-job, strictly increasing from 1, and double as the
// SSE resume cursor: a subscriber reconnecting with Last-Event-ID = N is
// replayed the events with id > N still held in the broadcaster's replay
// ring, then continues live.
package stream

import (
	"errors"
	"sync"
	"time"

	"dvr/internal/service/api"
)

// Subscriber-visible terminal conditions of Session.Next.
var (
	// ErrClosed: the broadcaster closed (job finished) and every buffered
	// event has been delivered — the stream's clean end.
	ErrClosed = errors.New("stream: session closed: job stream ended")
	// ErrExpired: the session idled past its TTL (or the registry shut
	// down) and was reaped; whatever was buffered is gone.
	ErrExpired = errors.New("stream: session expired")
)

// Broadcaster fans one job's events out to its sessions. Constructed by
// the Registry; safe for concurrent Publish/Subscribe/Close.
type Broadcaster struct {
	jobID string
	reg   *Registry

	mu       sync.Mutex
	nextID   uint64 // next event id to assign (ids start at 1)
	replay   []api.Event
	repHead  int // index of the oldest replay entry
	repLen   int
	sessions map[*Session]struct{}
	closed   bool
}

func newBroadcaster(jobID string, replayCap int, reg *Registry) *Broadcaster {
	if replayCap < 1 {
		replayCap = 1
	}
	return &Broadcaster{
		jobID:    jobID,
		reg:      reg,
		nextID:   1,
		replay:   make([]api.Event, replayCap),
		sessions: make(map[*Session]struct{}),
	}
}

// JobID names the job this broadcaster belongs to.
func (b *Broadcaster) JobID() string { return b.jobID }

// Publish stamps ev with the job's next event id and fans it out: into
// the replay ring (dropping the oldest retained event when full) and onto
// every attached session's buffer. It never blocks on subscribers and is
// safe to call from simulation goroutines. Returns the assigned id.
// Publishing to a closed broadcaster is a no-op (id 0).
func (b *Broadcaster) Publish(ev api.Event) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	ev.ID = b.nextID
	ev.JobID = b.jobID
	b.nextID++
	// Replay ring: overwrite the oldest slot once full.
	tail := (b.repHead + b.repLen) % len(b.replay)
	b.replay[tail] = ev
	if b.repLen < len(b.replay) {
		b.repLen++
	} else {
		b.repHead = (b.repHead + 1) % len(b.replay)
	}
	for s := range b.sessions {
		s.enqueue(ev)
	}
	if b.reg != nil {
		b.reg.published.Add(1)
	}
	return ev.ID
}

// Close marks the job's stream complete: attached sessions drain their
// buffers and then see ErrClosed; future subscribers get the replay window
// and an immediately-ended stream. Idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	sessions := make([]*Session, 0, len(b.sessions))
	for s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.closed = true
	b.mu.Unlock()
	for _, s := range sessions {
		s.markClosed()
	}
}

// Subscribers reports the number of attached sessions.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sessions)
}

// SubOptions shape one subscription.
type SubOptions struct {
	// After resumes delivery from event ids greater than this (the SSE
	// Last-Event-ID cursor). 0 means from the oldest retained event.
	After uint64
	// Buffer bounds the session's delivery buffer; 0 means the registry
	// default. When full, the oldest buffered event is dropped and the
	// session's drop counter incremented.
	Buffer int
	// TTL overrides the registry's session TTL; 0 means the default. A
	// session not polled within its TTL is reaped.
	TTL time.Duration
	// Filter, when non-nil, selects which events the session receives;
	// filtered-out events are skipped silently (they are not "drops" —
	// the subscriber asked not to see them).
	Filter func(api.Event) bool
}

// Subscribe attaches a new session: the retained replay events after
// opts.After are enqueued immediately (subject to the filter and buffer
// bound), then live events follow. Subscribing to a closed broadcaster
// still yields the replay, followed by ErrClosed.
func (b *Broadcaster) Subscribe(opts SubOptions) *Session {
	bufCap := opts.Buffer
	ttl := opts.TTL
	var defBuf int
	var defTTL time.Duration
	if b.reg != nil {
		defBuf, defTTL = b.reg.sessionBuffer, b.reg.sessionTTL
	}
	if bufCap <= 0 {
		bufCap = defBuf
	}
	if bufCap <= 0 {
		bufCap = 1024
	}
	if ttl <= 0 {
		ttl = defTTL
	}
	if ttl <= 0 {
		ttl = time.Minute
	}
	s := &Session{
		b:      b,
		buf:    make([]api.Event, bufCap),
		ttl:    ttl,
		filter: opts.Filter,
		notify: make(chan struct{}, 1),
	}
	s.lastPoll = time.Now()
	s.opened = s.lastPoll

	b.mu.Lock()
	if b.reg != nil {
		s.id = b.reg.seq.Add(1)
		b.reg.opened.Add(1)
	}
	// Replay before attaching so a concurrent Publish cannot interleave
	// out of order; both paths run under b.mu.
	for i := 0; i < b.repLen; i++ {
		ev := b.replay[(b.repHead+i)%len(b.replay)]
		if ev.ID > opts.After {
			s.enqueue(ev)
		}
	}
	closed := b.closed
	b.sessions[s] = struct{}{}
	b.mu.Unlock()
	if closed {
		s.markClosed()
	}
	return s
}

func (b *Broadcaster) drop(s *Session) {
	b.mu.Lock()
	delete(b.sessions, s)
	b.mu.Unlock()
}
