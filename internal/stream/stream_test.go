package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dvr/internal/service/api"
)

func testRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r := NewRegistry(cfg)
	t.Cleanup(r.Close)
	return r
}

func drain(t *testing.T, s *Session, timeout time.Duration) []api.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var out []api.Event
	for {
		ev, err := s.Next(ctx)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return out
			}
			t.Fatalf("Next: %v (got %d events)", err, len(out))
		}
		out = append(out, ev)
	}
}

// TestPublishSubscribeOrder: a subscriber sees every event, in publish
// order, with strictly increasing per-job ids starting at 1.
func TestPublishSubscribeOrder(t *testing.T) {
	r := testRegistry(t, Config{})
	b := r.Create("job-1")
	s := b.Subscribe(SubOptions{})
	defer s.Close()
	for i := 0; i < 50; i++ {
		b.Publish(api.Event{Kind: api.EventInterval, Cell: i})
	}
	b.Close()
	evs := drain(t, s, 5*time.Second)
	if len(evs) != 50 {
		t.Fatalf("got %d events, want 50", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != uint64(i+1) || ev.Cell != i || ev.JobID != "job-1" {
			t.Fatalf("event %d out of order or mislabeled: %+v", i, ev)
		}
	}
	if got := s.Dropped(); got != 0 {
		t.Errorf("dropped %d events with a fast subscriber", got)
	}
}

// TestSlowSubscriberDropsOldest is the backpressure contract: a stalled
// subscriber with a bounded buffer loses its OLDEST undelivered events,
// the loss is counted, and delivery resumes with the newest data.
func TestSlowSubscriberDropsOldest(t *testing.T) {
	r := testRegistry(t, Config{SessionBuffer: 4})
	b := r.Create("job-1")
	s := b.Subscribe(SubOptions{}) // stalled: no Next until the end
	defer s.Close()
	for i := 0; i < 100; i++ {
		b.Publish(api.Event{Kind: api.EventInterval, Cell: i})
	}
	b.Close()
	evs := drain(t, s, 5*time.Second)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want buffer cap 4", len(evs))
	}
	// The survivors are the newest four, in order.
	for i, ev := range evs {
		if want := 96 + i; ev.Cell != want {
			t.Errorf("survivor %d is event %d, want %d (drop-oldest violated)", i, ev.Cell, want)
		}
	}
	if got := s.Dropped(); got != 96 {
		t.Errorf("Dropped() = %d, want 96", got)
	}
	m := r.Snapshot()
	if m.EventsDropped != 96 {
		t.Errorf("registry EventsDropped = %d, want 96", m.EventsDropped)
	}
	if m.EventsPublished != 100 {
		t.Errorf("registry EventsPublished = %d, want 100", m.EventsPublished)
	}
}

// TestReplayResume: a late subscriber with Last-Event-ID = N receives
// exactly the retained events with id > N — the SSE reconnect contract.
func TestReplayResume(t *testing.T) {
	r := testRegistry(t, Config{ReplayEntries: 8})
	b := r.Create("job-1")
	for i := 0; i < 20; i++ {
		b.Publish(api.Event{Kind: api.EventInterval, Cell: i})
	}
	// Replay ring holds ids 13..20. A resume from 15 gets 16..20.
	s := b.Subscribe(SubOptions{After: 15})
	defer s.Close()
	b.Close()
	evs := drain(t, s, 5*time.Second)
	if len(evs) != 5 {
		t.Fatalf("got %d replayed events, want 5", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(16 + i); ev.ID != want {
			t.Errorf("replay %d: id %d, want %d", i, ev.ID, want)
		}
	}
	// A resume from before the window start gets the whole window.
	s2 := b.Subscribe(SubOptions{After: 3})
	defer s2.Close()
	evs2 := drain(t, s2, 5*time.Second)
	if len(evs2) != 8 || evs2[0].ID != 13 {
		t.Fatalf("aged-out resume: got %d events starting at id %d, want 8 starting at 13",
			len(evs2), evs2[0].ID)
	}
}

// TestFilteredSubscription: kind/cell filters skip events silently — they
// are not drops.
func TestFilteredSubscription(t *testing.T) {
	r := testRegistry(t, Config{})
	b := r.Create("job-1")
	s := b.Subscribe(SubOptions{Filter: func(ev api.Event) bool { return ev.Cell == 1 || ev.Cell < 0 }})
	defer s.Close()
	for i := 0; i < 9; i++ {
		b.Publish(api.Event{Kind: api.EventInterval, Cell: i % 3})
	}
	b.Publish(api.Event{Kind: api.EventJobDone, Cell: -1})
	b.Close()
	evs := drain(t, s, 5*time.Second)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 3 cell-1 + 1 job-done", len(evs))
	}
	if s.Dropped() != 0 {
		t.Errorf("filtered events counted as drops: %d", s.Dropped())
	}
}

// TestManySubscriberFanOut: N concurrent subscribers each receive the
// full stream in order while publishers run concurrently — the race
// detector is the real assertion here.
func TestManySubscriberFanOut(t *testing.T) {
	const subs, events = 16, 200
	r := testRegistry(t, Config{SessionBuffer: events + 8})
	b := r.Create("job-1")
	var wg sync.WaitGroup
	got := make([][]api.Event, subs)
	for i := 0; i < subs; i++ {
		s := b.Subscribe(SubOptions{})
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			defer s.Close()
			got[i] = drain(t, s, 10*time.Second)
		}(i, s)
	}
	// Two concurrent publishers (as two batch cells would be).
	var pub sync.WaitGroup
	for p := 0; p < 2; p++ {
		pub.Add(1)
		go func(p int) {
			defer pub.Done()
			for i := 0; i < events/2; i++ {
				b.Publish(api.Event{Kind: api.EventInterval, Cell: p})
			}
		}(p)
	}
	pub.Wait()
	b.Close()
	wg.Wait()
	for i := 0; i < subs; i++ {
		if len(got[i]) != events {
			t.Fatalf("subscriber %d got %d events, want %d", i, len(got[i]), events)
		}
		for j, ev := range got[i] {
			if ev.ID != uint64(j+1) {
				t.Fatalf("subscriber %d event %d has id %d (order broken)", i, j, ev.ID)
			}
		}
		if fmt.Sprintf("%v", got[i]) != fmt.Sprintf("%v", got[0]) {
			t.Fatalf("subscriber %d saw a different stream than subscriber 0", i)
		}
	}
}

// TestSessionTTLReap: a session that stops polling is expired by the
// janitor, its consumer unblocked with ErrExpired, and the reap counted.
func TestSessionTTLReap(t *testing.T) {
	r := testRegistry(t, Config{SessionTTL: 50 * time.Millisecond})
	b := r.Create("job-1")
	s := b.Subscribe(SubOptions{})
	deadline := time.Now().Add(5 * time.Second)
	for b.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("session not reaped within 5s of a 50ms TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := s.Next(context.Background()); !errors.Is(err, ErrExpired) {
		t.Fatalf("Next after reap: %v, want ErrExpired", err)
	}
	if m := r.Snapshot(); m.SessionsExpired != 1 || m.SessionsActive != 0 {
		t.Errorf("snapshot after reap: %+v", m)
	}
}

// TestSubscribeAfterClose: a subscriber arriving after the job finished
// still gets the replay window, then a clean end.
func TestSubscribeAfterClose(t *testing.T) {
	r := testRegistry(t, Config{})
	b := r.Create("job-1")
	b.Publish(api.Event{Kind: api.EventCellDone, Cell: 0})
	b.Publish(api.Event{Kind: api.EventJobDone, Cell: -1})
	b.Close()
	s := b.Subscribe(SubOptions{})
	defer s.Close()
	evs := drain(t, s, 5*time.Second)
	if len(evs) != 2 || evs[1].Kind != api.EventJobDone {
		t.Fatalf("late subscriber got %+v", evs)
	}
}

// TestPublishAfterCloseIsNoop: the job cannot grow its stream after the
// terminal event.
func TestPublishAfterCloseIsNoop(t *testing.T) {
	r := testRegistry(t, Config{})
	b := r.Create("job-1")
	b.Close()
	if id := b.Publish(api.Event{Kind: api.EventInterval}); id != 0 {
		t.Errorf("publish after close assigned id %d", id)
	}
}

// TestNextHonorsContext: a blocked Next returns when its context ends
// (the SSE handler's heartbeat path).
func TestNextHonorsContext(t *testing.T) {
	r := testRegistry(t, Config{})
	b := r.Create("job-1")
	s := b.Subscribe(SubOptions{})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next: %v, want DeadlineExceeded", err)
	}
}
