package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Interval-dump sinks: CSV for spreadsheets, JSON for tooling. Both are
// deterministic byte-for-byte for identical interval series.

// Dump bundles an interval series with the identity of the run it came
// from; it is the JSON wire/file format for interval telemetry.
type Dump struct {
	Bench         string     `json:"bench"`
	Technique     string     `json:"technique"`
	IntervalInsts uint64     `json:"interval_insts"`
	Intervals     []Interval `json:"intervals"`
}

// csvHeader lists the flattened columns WriteIntervalsCSV emits.
var csvHeader = []string{
	"index", "start_inst", "end_inst", "start_cycle", "end_cycle",
	"ipc", "mlp", "pref_accuracy", "pref_coverage", "pref_timeliness",
	"pref_late_frac", "runahead_occupancy", "rob_stall_frac",
	"mshr_high_water", "pref_issued", "pref_useful", "dram_accesses",
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteIntervalsCSV writes the series as CSV with a fixed header row.
func WriteIntervalsCSV(w io.Writer, ivs []Interval) error {
	for i, col := range csvHeader {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := io.WriteString(w, sep+col); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, iv := range ivs {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s,%s,%d,%d,%d,%d\n",
			iv.Index, iv.StartInst, iv.EndInst, iv.StartCycle, iv.EndCycle,
			fmtF(iv.IPC), fmtF(iv.MLP), fmtF(iv.PrefAccuracy), fmtF(iv.PrefCoverage),
			fmtF(iv.PrefTimeliness), fmtF(iv.PrefLateFrac), fmtF(iv.RunaheadOccupancy),
			fmtF(iv.ROBStallFrac), iv.MSHRHighWater,
			iv.Delta.PrefIssued, iv.Delta.PrefUseful, iv.Delta.DRAMAccesses)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteDumpJSON writes an indented Dump document.
func WriteDumpJSON(w io.Writer, d Dump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
