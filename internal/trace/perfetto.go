package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto / Chrome trace-event sink. The layout maps the simulator onto
// three tracks of one process:
//
//	tid 1 "main pipeline"      ROB-stall and commit-hold spans
//	tid 2 "runahead subthread" episode/vector-batch spans, discovery and
//	                           reconvergence instants
//	tid 3 "memory hierarchy"   prefetch issue spans, late/useless instants
//
// plus a process-scoped "mshr_high_water" counter. Cycles are written as
// microsecond timestamps (1 cycle == 1 µs), which keeps Perfetto's zoom
// ruler meaningful without a custom clock.
//
// Output is deterministic byte-for-byte for identical recordings: events
// are struct-encoded in ring order and args maps are marshalled by
// encoding/json, which sorts keys.

const (
	perfettoPID = 1

	tidMain     = 1
	tidRunahead = 2
	tidMemory   = 3
)

// PerfettoEvent is one Chrome trace-event JSON entry. Exported so other
// span sources (internal/obs's fleet view) can stream the same format
// through PerfettoWriter instead of reimplementing the envelope.
type PerfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type perfettoEvent = PerfettoEvent

// PerfettoWriter streams trace events as a Chrome trace-event JSON
// document: prologue on first Emit, one event per line, and an
// "otherData" epilogue carrying the drop count at Close. Output is
// deterministic byte-for-byte for an identical event sequence (args
// maps marshal with sorted keys).
type PerfettoWriter struct {
	w       io.Writer
	started bool
	first   bool
}

// NewPerfettoWriter wraps w. Nothing is written until the first Emit
// (or Close, which emits an empty document).
func NewPerfettoWriter(w io.Writer) *PerfettoWriter {
	return &PerfettoWriter{w: w, first: true}
}

func (pw *PerfettoWriter) prologue() error {
	if pw.started {
		return nil
	}
	pw.started = true
	_, err := io.WriteString(pw.w, "{\"traceEvents\":[\n")
	return err
}

// Emit writes one event.
func (pw *PerfettoWriter) Emit(pe PerfettoEvent) error {
	if err := pw.prologue(); err != nil {
		return err
	}
	b, err := json.Marshal(pe)
	if err != nil {
		return err
	}
	sep := ",\n"
	if pw.first {
		sep = ""
		pw.first = false
	}
	_, err = fmt.Fprintf(pw.w, "%s%s", sep, b)
	return err
}

// ProcessName emits a process_name metadata event for pid.
func (pw *PerfettoWriter) ProcessName(pid int, name string) error {
	return pw.Emit(PerfettoEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// ThreadName emits a thread_name metadata event for (pid, tid).
func (pw *PerfettoWriter) ThreadName(pid, tid int, name string) error {
	return pw.Emit(PerfettoEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Close writes the epilogue with the dropped-event count.
func (pw *PerfettoWriter) Close(dropped uint64) error {
	if err := pw.prologue(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(pw.w, "\n],\"otherData\":{\"dropped_events\":%d}}\n", dropped)
	return err
}

func span(name string, ev Event, tid int, args map[string]any) perfettoEvent {
	dur := uint64(0)
	if ev.End > ev.Cycle {
		dur = ev.End - ev.Cycle
	}
	return perfettoEvent{Name: name, Ph: "X", Ts: ev.Cycle, Dur: &dur, Pid: perfettoPID, Tid: tid, Args: args}
}

func instant(name string, ev Event, tid int, args map[string]any) perfettoEvent {
	return perfettoEvent{Name: name, Ph: "i", Ts: ev.Cycle, Pid: perfettoPID, Tid: tid, S: "t", Args: args}
}

func convertEvent(ev Event) perfettoEvent {
	name := ev.Kind.String()
	switch ev.Kind {
	case EvRunaheadSpawn:
		return span("runahead-episode", ev, tidRunahead, map[string]any{
			"pc": ev.PC, "lanes": ev.Arg, "reason": ReasonString(ev.Arg2),
		})
	case EvRunaheadEnd:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "reason": ReasonString(ev.Arg2)})
	case EvDiscoveryStart:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC})
	case EvDiscoveryEnd:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "lanes": ev.Arg, "spawnable": ev.Arg2 == 1})
	case EvNestedSpawn:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "outer_lanes": ev.Arg})
	case EvVectorBatch:
		return span(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "lanes": ev.Arg})
	case EvReconverge:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "lanes": ev.Arg})
	case EvROBStall:
		return span(name, ev, tidMain, map[string]any{"pc": ev.PC})
	case EvCommitHold:
		return span(name, ev, tidMain, map[string]any{"pc": ev.PC})
	case EvPrefetchIssue:
		return span(name, ev, tidMemory, map[string]any{"src": SourceString(ev.Arg), "level": ev.Arg2})
	case EvPrefetchLate, EvPrefetchUseless:
		return instant(name, ev, tidMemory, map[string]any{"src": SourceString(ev.Arg)})
	case EvMSHRHighWater:
		return perfettoEvent{Name: "mshr_high_water", Ph: "C", Ts: ev.Cycle, Pid: perfettoPID,
			Args: map[string]any{"in_flight": ev.Arg}}
	case EvPatternConfirm:
		return instant(name, ev, tidMemory, map[string]any{"pc": ev.PC, "coeff": ev.Arg})
	}
	return instant(name, ev, tidMain, nil)
}

// WritePerfetto writes the ring contents as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing). name labels the process.
func (r *Recorder) WritePerfetto(w io.Writer, name string) error {
	pw := NewPerfettoWriter(w)
	if err := pw.ProcessName(perfettoPID, name); err != nil {
		return err
	}
	if err := pw.ThreadName(perfettoPID, tidMain, "main pipeline"); err != nil {
		return err
	}
	if err := pw.ThreadName(perfettoPID, tidRunahead, "runahead subthread"); err != nil {
		return err
	}
	if err := pw.ThreadName(perfettoPID, tidMemory, "memory hierarchy"); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		if err := pw.Emit(convertEvent(ev)); err != nil {
			return err
		}
	}
	return pw.Close(r.Dropped())
}
