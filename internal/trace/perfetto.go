package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto / Chrome trace-event sink. The layout maps the simulator onto
// three tracks of one process:
//
//	tid 1 "main pipeline"      ROB-stall and commit-hold spans
//	tid 2 "runahead subthread" episode/vector-batch spans, discovery and
//	                           reconvergence instants
//	tid 3 "memory hierarchy"   prefetch issue spans, late/useless instants
//
// plus a process-scoped "mshr_high_water" counter. Cycles are written as
// microsecond timestamps (1 cycle == 1 µs), which keeps Perfetto's zoom
// ruler meaningful without a custom clock.
//
// Output is deterministic byte-for-byte for identical recordings: events
// are struct-encoded in ring order and args maps are marshalled by
// encoding/json, which sorts keys.

const (
	perfettoPID = 1

	tidMain     = 1
	tidRunahead = 2
	tidMemory   = 3
)

type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func span(name string, ev Event, tid int, args map[string]any) perfettoEvent {
	dur := uint64(0)
	if ev.End > ev.Cycle {
		dur = ev.End - ev.Cycle
	}
	return perfettoEvent{Name: name, Ph: "X", Ts: ev.Cycle, Dur: &dur, Pid: perfettoPID, Tid: tid, Args: args}
}

func instant(name string, ev Event, tid int, args map[string]any) perfettoEvent {
	return perfettoEvent{Name: name, Ph: "i", Ts: ev.Cycle, Pid: perfettoPID, Tid: tid, S: "t", Args: args}
}

func convertEvent(ev Event) perfettoEvent {
	name := ev.Kind.String()
	switch ev.Kind {
	case EvRunaheadSpawn:
		return span("runahead-episode", ev, tidRunahead, map[string]any{
			"pc": ev.PC, "lanes": ev.Arg, "reason": ReasonString(ev.Arg2),
		})
	case EvRunaheadEnd:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "reason": ReasonString(ev.Arg2)})
	case EvDiscoveryStart:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC})
	case EvDiscoveryEnd:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "lanes": ev.Arg, "spawnable": ev.Arg2 == 1})
	case EvNestedSpawn:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "outer_lanes": ev.Arg})
	case EvVectorBatch:
		return span(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "lanes": ev.Arg})
	case EvReconverge:
		return instant(name, ev, tidRunahead, map[string]any{"pc": ev.PC, "lanes": ev.Arg})
	case EvROBStall:
		return span(name, ev, tidMain, map[string]any{"pc": ev.PC})
	case EvCommitHold:
		return span(name, ev, tidMain, map[string]any{"pc": ev.PC})
	case EvPrefetchIssue:
		return span(name, ev, tidMemory, map[string]any{"src": SourceString(ev.Arg), "level": ev.Arg2})
	case EvPrefetchLate, EvPrefetchUseless:
		return instant(name, ev, tidMemory, map[string]any{"src": SourceString(ev.Arg)})
	case EvMSHRHighWater:
		return perfettoEvent{Name: "mshr_high_water", Ph: "C", Ts: ev.Cycle, Pid: perfettoPID,
			Args: map[string]any{"in_flight": ev.Arg}}
	case EvPatternConfirm:
		return instant(name, ev, tidMemory, map[string]any{"pc": ev.PC, "coeff": ev.Arg})
	}
	return instant(name, ev, tidMain, nil)
}

// WritePerfetto writes the ring contents as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing). name labels the process.
func (r *Recorder) WritePerfetto(w io.Writer, name string) error {
	meta := []perfettoEvent{
		{Name: "process_name", Ph: "M", Pid: perfettoPID,
			Args: map[string]any{"name": name}},
		{Name: "thread_name", Ph: "M", Pid: perfettoPID, Tid: tidMain,
			Args: map[string]any{"name": "main pipeline"}},
		{Name: "thread_name", Ph: "M", Pid: perfettoPID, Tid: tidRunahead,
			Args: map[string]any{"name": "runahead subthread"}},
		{Name: "thread_name", Ph: "M", Pid: perfettoPID, Tid: tidMemory,
			Args: map[string]any{"name": "memory hierarchy"}},
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	writeOne := func(pe perfettoEvent) error {
		b, err := json.Marshal(pe)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, b)
		return err
	}
	for _, pe := range meta {
		if err := writeOne(pe); err != nil {
			return err
		}
	}
	for _, ev := range r.Events() {
		if err := writeOne(convertEvent(ev)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n],\"otherData\":{\"dropped_events\":%d}}\n", r.Dropped())
	return err
}
