// Package trace is the simulator's introspection layer: a ring-buffered
// structured event collector plus an interval time-series sampler, threaded
// through cpu.Core, runahead engines, the memory hierarchy, and the
// prefetchers.
//
// Two contracts govern the whole package:
//
//   - Observation only. Recorder methods read simulator state but never
//     mutate it, so a traced run produces a Result.Canonical() bit-identical
//     to the untraced run (guarded by TestTracedBitIdentity).
//   - Zero overhead when disabled. Every method is safe on a nil *Recorder
//     and returns immediately; instrumented code either calls through a nil
//     receiver or guards with a single pointer check, and the hot commit
//     loop stays allocation-free (guarded by TestHotPathAllocations).
//
// The package sits below every simulator package (it imports none of them),
// so mem, runahead, and cpu can all emit into the same Recorder. Counters is
// therefore a flat struct: cpu composes it from mem.Stats and EngineStats at
// each sampling boundary.
package trace

// Kind identifies the event type. The taxonomy is documented in DESIGN.md
// ("Tracing & telemetry").
type Kind uint8

const (
	// EvRunaheadSpawn is a span covering one runahead episode: Cycle..End,
	// PC = trigger PC, Arg = lane count, Arg2 = spawn Reason.
	EvRunaheadSpawn Kind = iota
	// EvRunaheadEnd marks episode termination (instant at the span's end,
	// kept separate so terminations survive ring wrap even when the
	// matching spawn was overwritten).
	EvRunaheadEnd
	// EvDiscoveryStart marks entry into DVR discovery mode (PC = trigger).
	EvDiscoveryStart
	// EvDiscoveryEnd marks discovery completion; Arg = lanes found,
	// Arg2 = 1 when a vectorizable chain was found (a spawn is pending).
	EvDiscoveryEnd
	// EvNestedSpawn marks a nested (NDM) inner-loop spawn inside an
	// episode; PC = inner stride PC, Arg = outer lane count.
	EvNestedSpawn
	// EvVectorBatch is a span covering one vector-batch execution:
	// Cycle..End, PC = batch start PC, Arg = lane count.
	EvVectorBatch
	// EvReconverge marks a reconvergence-stack pop resuming deferred
	// lanes; PC = reconvergence PC, Arg = lanes resumed.
	EvReconverge
	// EvROBStall is a span covering one ROB-stall episode on the main
	// pipeline: Cycle..End, PC = the load blocking retirement.
	EvROBStall
	// EvCommitHold is a span where the engine held commit (DVR offload
	// mode borrowing the backend): Cycle..End.
	EvCommitHold
	// EvPrefetchIssue is a span from prefetch issue to line fill:
	// Cycle..End, Arg = source (mem.Source numbering), Arg2 = fill level.
	EvPrefetchIssue
	// EvPrefetchLate marks a demand access catching an in-flight
	// prefetch (too late to hide the full latency); Arg = source.
	EvPrefetchLate
	// EvPrefetchUseless marks an unused prefetched line evicted from the
	// hierarchy; Arg = source.
	EvPrefetchUseless
	// EvMSHRHighWater marks a new run-maximum MSHR occupancy; Arg = the
	// new high-water mark.
	EvMSHRHighWater
	// EvPatternConfirm marks an IMP indirect pattern reaching confirmed
	// state; PC = indirect load PC, Arg = |coefficient|.
	EvPatternConfirm

	numKinds
)

var kindNames = [numKinds]string{
	EvRunaheadSpawn:   "runahead-spawn",
	EvRunaheadEnd:     "runahead-end",
	EvDiscoveryStart:  "discovery-start",
	EvDiscoveryEnd:    "discovery-end",
	EvNestedSpawn:     "nested-spawn",
	EvVectorBatch:     "vector-batch",
	EvReconverge:      "reconverge",
	EvROBStall:        "rob-stall",
	EvCommitHold:      "commit-hold",
	EvPrefetchIssue:   "prefetch-issue",
	EvPrefetchLate:    "prefetch-late",
	EvPrefetchUseless: "prefetch-useless",
	EvMSHRHighWater:   "mshr-high-water",
	EvPatternConfirm:  "imp-pattern-confirm",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Spawn reasons (Arg2 of EvRunaheadSpawn).
const (
	ReasonStall  uint64 = iota // ROB stall on a confident striding load
	ReasonStride               // decoupled: stride PC recommitted
	ReasonNested               // inner loop of a nested (NDM) episode
)

var reasonNames = [...]string{ReasonStall: "stall", ReasonStride: "stride", ReasonNested: "nested"}

// ReasonString names a spawn reason for sinks.
func ReasonString(r uint64) string {
	if r < uint64(len(reasonNames)) {
		return reasonNames[r]
	}
	return "unknown"
}

// Source names mirror mem.Source numbering (trace cannot import mem; the
// order is asserted by TestSourceNamesMatchMem).
var sourceNames = [...]string{"demand", "stride-pf", "runahead", "imp", "oracle"}

// SourceString names a prefetch source for sinks.
func SourceString(s uint64) string {
	if s < uint64(len(sourceNames)) {
		return sourceNames[s]
	}
	return "unknown"
}

// NumSources is the number of named prefetch sources (== mem's numSources).
const NumSources = len(sourceNames)

// Event is one fixed-size trace record. Span events use Cycle..End;
// instants leave End zero. Arg/Arg2 are Kind-specific (see the Kind docs).
type Event struct {
	Kind  Kind
	Cycle uint64
	End   uint64
	PC    int
	Arg   uint64
	Arg2  uint64
}

// Config sizes a Recorder. Zero values disable the corresponding feature.
type Config struct {
	// Events is the event-ring capacity; once full the oldest events are
	// overwritten (Dropped counts them). 0 disables event collection.
	Events int
	// IntervalEvery samples the counter time-series every N committed
	// instructions. 0 disables interval sampling.
	IntervalEvery uint64

	// OnInterval, when non-nil, is called with each interval the moment
	// its closing sample lands (the same values Intervals() later
	// returns, in the same order — the live stream and the post-hoc
	// series are element-identical by construction). It runs on the
	// simulation goroutine, so implementations must be fast and must
	// never block; they must also never mutate simulator state (the
	// bit-identity contract extends to them).
	OnInterval func(Interval)
	// OnEvent, when non-nil, is called with every emitted event — even
	// when Events is 0 and no ring is kept, which is how a live
	// subscriber can watch runahead episodes without paying for event
	// retention. Same discipline as OnInterval: fast, non-blocking,
	// observation only.
	OnEvent func(Event)
}

// Recorder collects events and interval samples for one simulation. It is
// not safe for concurrent use; each core run owns its own Recorder (matching
// the one-goroutine-per-simulation model everywhere else in the repo).
//
// All methods are nil-safe: a nil *Recorder is the disabled tracer.
type Recorder struct {
	cfg     Config
	ring    []Event
	emitted uint64
	samples []sample
	curHW   int // interval-local MSHR high-water, reset at each Sample
	runHW   int // run-wide MSHR high-water
}

type sample struct {
	inst  uint64
	cycle uint64
	c     Counters
	hw    int
}

// New builds a Recorder. A config with both fields zero still yields a
// usable (if silent) recorder; callers wanting tracing fully off should
// pass a nil *Recorder instead.
func New(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg}
	if cfg.Events > 0 {
		r.ring = make([]Event, cfg.Events)
	}
	return r
}

// IntervalEvery reports the sampling cadence (0 when disabled or nil).
func (r *Recorder) IntervalEvery() uint64 {
	if r == nil {
		return 0
	}
	return r.cfg.IntervalEvery
}

// Emit records one event into the ring, overwriting the oldest when full,
// and forwards it to the OnEvent hook (which fires even without a ring).
func (r *Recorder) Emit(k Kind, cycle, end uint64, pc int, arg, arg2 uint64) {
	if r == nil {
		return
	}
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(Event{Kind: k, Cycle: cycle, End: end, PC: pc, Arg: arg, Arg2: arg2})
	}
	if len(r.ring) == 0 {
		return
	}
	r.ring[r.emitted%uint64(len(r.ring))] = Event{Kind: k, Cycle: cycle, End: end, PC: pc, Arg: arg, Arg2: arg2}
	r.emitted++
}

// MSHROccupancy feeds the sampler the current number of in-flight misses,
// tracking per-interval and run-wide high-water marks (the latter emits an
// EvMSHRHighWater event when it rises).
func (r *Recorder) MSHROccupancy(now uint64, n int) {
	if r == nil {
		return
	}
	if n > r.curHW {
		r.curHW = n
	}
	if n > r.runHW {
		r.runHW = n
		r.Emit(EvMSHRHighWater, now, 0, -1, uint64(n), 0)
	}
}

// MSHRHighWater reports the run-wide occupancy maximum seen so far.
func (r *Recorder) MSHRHighWater() int {
	if r == nil {
		return 0
	}
	return r.runHW
}

// Sample records one counter snapshot at an instruction boundary. The
// caller (cpu.Core) samples at the run start, every IntervalEvery committed
// instructions, and at the run end; a repeated boundary (end coinciding
// with the last cadence sample) is ignored.
func (r *Recorder) Sample(inst, cycle uint64, c Counters) {
	if r == nil || r.cfg.IntervalEvery == 0 {
		return
	}
	if n := len(r.samples); n > 0 && r.samples[n-1].inst == inst {
		return
	}
	r.samples = append(r.samples, sample{inst: inst, cycle: cycle, c: c, hw: r.curHW})
	r.curHW = 0
	if n := len(r.samples); n >= 2 && r.cfg.OnInterval != nil {
		r.cfg.OnInterval(makeInterval(r.samples[n-2], r.samples[n-1], n-2))
	}
}

// Events returns the ring contents oldest-first. The slice is freshly
// allocated; the Recorder can keep recording afterwards.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.ring) == 0 || r.emitted == 0 {
		return nil
	}
	capU := uint64(len(r.ring))
	if r.emitted <= capU {
		out := make([]Event, r.emitted)
		copy(out, r.ring[:r.emitted])
		return out
	}
	out := make([]Event, capU)
	start := r.emitted % capU
	n := copy(out, r.ring[start:])
	copy(out[n:], r.ring[:start])
	return out
}

// Dropped reports how many events were overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil || len(r.ring) == 0 {
		return 0
	}
	if capU := uint64(len(r.ring)); r.emitted > capU {
		return r.emitted - capU
	}
	return 0
}

// Counters is the flat snapshot the interval sampler diffs. cpu.Core
// composes it from mem.Stats, the core's own Result counters, and the
// engine's EngineStats at each boundary; trace deliberately knows nothing
// about those types.
type Counters struct {
	ROBStallCycles     uint64 `json:"rob_stall_cycles"`
	CommitHoldCycles   uint64 `json:"commit_hold_cycles"`
	DemandAccesses     uint64 `json:"demand_accesses"`
	DemandL1Hits       uint64 `json:"demand_l1_hits"`
	DemandDRAM         uint64 `json:"demand_dram"`
	DemandMerged       uint64 `json:"demand_merged"`
	DemandMissCycles   uint64 `json:"demand_miss_cycles"`
	PrefIssued         uint64 `json:"pref_issued"`
	PrefUseful         uint64 `json:"pref_useful"`
	PrefUsefulL1       uint64 `json:"pref_useful_l1"`
	PrefLate           uint64 `json:"pref_late"`
	PrefUnusedEvict    uint64 `json:"pref_unused_evict"`
	MSHRBusyCycles     uint64 `json:"mshr_busy_cycles"`
	DRAMAccesses       uint64 `json:"dram_accesses"`
	RunaheadEpisodes   uint64 `json:"runahead_episodes"`
	RunaheadPrefetches uint64 `json:"runahead_prefetches"`
	RunaheadBusyCycles uint64 `json:"runahead_busy_cycles"`
	VectorUops         uint64 `json:"vector_uops"`
}

func (c Counters) sub(b Counters) Counters {
	return Counters{
		ROBStallCycles:     c.ROBStallCycles - b.ROBStallCycles,
		CommitHoldCycles:   c.CommitHoldCycles - b.CommitHoldCycles,
		DemandAccesses:     c.DemandAccesses - b.DemandAccesses,
		DemandL1Hits:       c.DemandL1Hits - b.DemandL1Hits,
		DemandDRAM:         c.DemandDRAM - b.DemandDRAM,
		DemandMerged:       c.DemandMerged - b.DemandMerged,
		DemandMissCycles:   c.DemandMissCycles - b.DemandMissCycles,
		PrefIssued:         c.PrefIssued - b.PrefIssued,
		PrefUseful:         c.PrefUseful - b.PrefUseful,
		PrefUsefulL1:       c.PrefUsefulL1 - b.PrefUsefulL1,
		PrefLate:           c.PrefLate - b.PrefLate,
		PrefUnusedEvict:    c.PrefUnusedEvict - b.PrefUnusedEvict,
		MSHRBusyCycles:     c.MSHRBusyCycles - b.MSHRBusyCycles,
		DRAMAccesses:       c.DRAMAccesses - b.DRAMAccesses,
		RunaheadEpisodes:   c.RunaheadEpisodes - b.RunaheadEpisodes,
		RunaheadPrefetches: c.RunaheadPrefetches - b.RunaheadPrefetches,
		RunaheadBusyCycles: c.RunaheadBusyCycles - b.RunaheadBusyCycles,
		VectorUops:         c.VectorUops - b.VectorUops,
	}
}

// Interval is one step of the sampled time-series: the raw counter deltas
// plus the derived rates the paper's figures are built from.
type Interval struct {
	Index      int    `json:"index"`
	StartInst  uint64 `json:"start_inst"`
	EndInst    uint64 `json:"end_inst"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`

	Delta         Counters `json:"delta"`
	MSHRHighWater int      `json:"mshr_high_water"`

	// IPC is committed instructions per cycle over the interval.
	IPC float64 `json:"ipc"`
	// MLP is the mean outstanding-miss count (MSHR occupancy integral
	// over interval cycles). The final interval counts in-flight misses
	// only up to the last commit cycle, so interval MLP sums are a lower
	// bound on the end-of-run figure.
	MLP float64 `json:"mlp"`
	// PrefAccuracy = useful prefetches / issued prefetches.
	PrefAccuracy float64 `json:"pref_accuracy"`
	// PrefCoverage = useful prefetches / (useful + demand misses that
	// went all the way to DRAM): the fraction of would-be DRAM demand
	// misses the prefetchers absorbed.
	PrefCoverage float64 `json:"pref_coverage"`
	// PrefTimeliness = prefetches useful at L1 / useful anywhere (a late
	// prefetch is demoted to the level it reached in time).
	PrefTimeliness float64 `json:"pref_timeliness"`
	// PrefLateFrac = in-flight-overtaken prefetches / issued.
	PrefLateFrac float64 `json:"pref_late_frac"`
	// RunaheadOccupancy = runahead busy cycles / interval cycles. Can
	// exceed 1: the decoupled subthread timeline runs ahead of commit.
	RunaheadOccupancy float64 `json:"runahead_occupancy"`
	// ROBStallFrac = full-ROB stall cycles / interval cycles.
	ROBStallFrac float64 `json:"rob_stall_frac"`
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// makeInterval derives one interval from an adjacent sample pair. Both the
// post-hoc Intervals() series and the live OnInterval hook go through it,
// which is what makes a streamed series element-identical to the stored one.
func makeInterval(a, b sample, index int) Interval {
	d := b.c.sub(a.c)
	cycles := b.cycle - a.cycle
	return Interval{
		Index:         index,
		StartInst:     a.inst,
		EndInst:       b.inst,
		StartCycle:    a.cycle,
		EndCycle:      b.cycle,
		Delta:         d,
		MSHRHighWater: b.hw,

		IPC:               ratio(b.inst-a.inst, cycles),
		MLP:               ratio(d.MSHRBusyCycles, cycles),
		PrefAccuracy:      ratio(d.PrefUseful, d.PrefIssued),
		PrefCoverage:      ratio(d.PrefUseful, d.PrefUseful+d.DemandDRAM),
		PrefTimeliness:    ratio(d.PrefUsefulL1, d.PrefUseful),
		PrefLateFrac:      ratio(d.PrefLate, d.PrefIssued),
		RunaheadOccupancy: ratio(d.RunaheadBusyCycles, cycles),
		ROBStallFrac:      ratio(d.ROBStallCycles, cycles),
	}
}

// Intervals derives the interval series from the recorded samples.
func (r *Recorder) Intervals() []Interval {
	if r == nil || len(r.samples) < 2 {
		return nil
	}
	out := make([]Interval, 0, len(r.samples)-1)
	for i := 1; i < len(r.samples); i++ {
		out = append(out, makeInterval(r.samples[i-1], r.samples[i], i-1))
	}
	return out
}
