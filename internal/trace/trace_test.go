package trace_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dvr/internal/mem"
	"dvr/internal/trace"
)

// TestNilRecorderIsSafe: a nil *Recorder is the disabled tracer — every
// method must be callable and inert.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *trace.Recorder
	r.Emit(trace.EvRunaheadSpawn, 1, 2, 3, 4, 5)
	r.MSHROccupancy(1, 9)
	r.Sample(0, 0, trace.Counters{})
	if r.Events() != nil {
		t.Error("nil recorder returned events")
	}
	if r.Dropped() != 0 {
		t.Error("nil recorder reported drops")
	}
	if r.Intervals() != nil {
		t.Error("nil recorder returned intervals")
	}
	if r.IntervalEvery() != 0 {
		t.Error("nil recorder reported a cadence")
	}
	if r.MSHRHighWater() != 0 {
		t.Error("nil recorder reported a high water")
	}
	if err := r.WritePerfetto(&bytes.Buffer{}, "nil"); err != nil {
		t.Errorf("nil WritePerfetto: %v", err)
	}
}

func TestRingWrapAndDropped(t *testing.T) {
	r := trace.New(trace.Config{Events: 4})
	for i := 0; i < 10; i++ {
		r.Emit(trace.EvReconverge, uint64(i), 0, i, 0, 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want ring capacity 4", len(evs))
	}
	// Oldest-first: the survivors are emissions 6..9.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d", i, ev.Cycle, want)
		}
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
}

func TestIntervalsMath(t *testing.T) {
	r := trace.New(trace.Config{IntervalEvery: 100})
	r.Sample(0, 0, trace.Counters{})
	r.MSHROccupancy(50, 7)
	r.Sample(100, 200, trace.Counters{
		ROBStallCycles: 50, MSHRBusyCycles: 400,
		PrefIssued: 10, PrefUseful: 8, PrefUsefulL1: 6, PrefLate: 2,
		DemandDRAM: 2, RunaheadBusyCycles: 100,
	})
	// Duplicate boundary (the final sample landing on the last cadence
	// sample) must be ignored.
	r.Sample(100, 200, trace.Counters{})
	ivs := r.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("got %d intervals, want 1", len(ivs))
	}
	iv := ivs[0]
	if iv.StartInst != 0 || iv.EndInst != 100 || iv.EndCycle != 200 {
		t.Fatalf("bad bounds: %+v", iv)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("IPC", iv.IPC, 0.5)
	check("MLP", iv.MLP, 2.0)
	check("PrefAccuracy", iv.PrefAccuracy, 0.8)
	check("PrefCoverage", iv.PrefCoverage, 0.8) // 8 / (8 + 2)
	check("PrefTimeliness", iv.PrefTimeliness, 0.75)
	check("PrefLateFrac", iv.PrefLateFrac, 0.2)
	check("RunaheadOccupancy", iv.RunaheadOccupancy, 0.5)
	check("ROBStallFrac", iv.ROBStallFrac, 0.25)
	if iv.MSHRHighWater != 7 {
		t.Errorf("MSHRHighWater = %d, want 7", iv.MSHRHighWater)
	}
}

func TestIntervalsZeroDenominators(t *testing.T) {
	r := trace.New(trace.Config{IntervalEvery: 10})
	r.Sample(0, 0, trace.Counters{})
	r.Sample(10, 10, trace.Counters{})
	ivs := r.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("got %d intervals, want 1", len(ivs))
	}
	iv := ivs[0]
	for name, v := range map[string]float64{
		"PrefAccuracy": iv.PrefAccuracy, "PrefCoverage": iv.PrefCoverage,
		"PrefTimeliness": iv.PrefTimeliness, "PrefLateFrac": iv.PrefLateFrac,
	} {
		if v != 0 {
			t.Errorf("%s = %v with zero denominator, want 0", name, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s is %v", name, v)
		}
	}
}

// TestLiveHooksMatchPostHoc: the OnInterval hook must deliver exactly the
// series Intervals() later returns (same values, same order), and OnEvent
// must see every emission — including with no event ring configured, which
// is how the dvrd stream layer watches runahead episodes without paying
// for retention.
func TestLiveHooksMatchPostHoc(t *testing.T) {
	var (
		live   []trace.Interval
		events []trace.Event
	)
	r := trace.New(trace.Config{
		IntervalEvery: 100,
		OnInterval:    func(iv trace.Interval) { live = append(live, iv) },
		OnEvent:       func(ev trace.Event) { events = append(events, ev) },
	})
	r.Sample(0, 0, trace.Counters{})
	r.Emit(trace.EvRunaheadSpawn, 10, 50, 3, 16, trace.ReasonStride)
	r.MSHROccupancy(20, 4)
	r.Sample(100, 200, trace.Counters{PrefIssued: 4, PrefUseful: 2})
	r.Sample(100, 200, trace.Counters{}) // duplicate boundary: no hook
	r.Sample(250, 500, trace.Counters{PrefIssued: 9, PrefUseful: 7})

	post := r.Intervals()
	if len(live) != len(post) || len(post) != 2 {
		t.Fatalf("live %d vs post-hoc %d intervals, want 2", len(live), len(post))
	}
	for i := range post {
		if live[i] != post[i] {
			t.Errorf("interval %d differs:\nlive: %+v\npost: %+v", i, live[i], post[i])
		}
	}
	// Two explicit emissions reach the hook (the spawn and the MSHR
	// high-water event) even though Events=0 keeps no ring.
	if len(events) != 2 {
		t.Fatalf("OnEvent saw %d events, want 2: %+v", len(events), events)
	}
	if events[0].Kind != trace.EvRunaheadSpawn || events[1].Kind != trace.EvMSHRHighWater {
		t.Errorf("unexpected event kinds: %+v", events)
	}
	if r.Events() != nil {
		t.Error("ringless recorder retained events")
	}
}

// fillRecorder emits one event of every kind plus occupancy and samples.
func fillRecorder() *trace.Recorder {
	r := trace.New(trace.Config{Events: 64, IntervalEvery: 100})
	r.Sample(0, 0, trace.Counters{})
	r.Emit(trace.EvRunaheadSpawn, 10, 50, 3, 16, trace.ReasonStride)
	r.Emit(trace.EvRunaheadEnd, 50, 0, 3, 16, trace.ReasonStride)
	r.Emit(trace.EvDiscoveryStart, 12, 0, 4, 0, 0)
	r.Emit(trace.EvDiscoveryEnd, 20, 0, 4, 8, 1)
	r.Emit(trace.EvNestedSpawn, 25, 0, 5, 8, 0)
	r.Emit(trace.EvVectorBatch, 26, 40, 5, 8, 0)
	r.Emit(trace.EvReconverge, 41, 0, 6, 4, 0)
	r.Emit(trace.EvROBStall, 15, 30, 7, 0, 0)
	r.Emit(trace.EvCommitHold, 31, 35, 7, 0, 0)
	r.Emit(trace.EvPrefetchIssue, 11, 60, -1, 2, 3)
	r.Emit(trace.EvPrefetchLate, 55, 0, -1, 2, 0)
	r.Emit(trace.EvPrefetchUseless, 70, 0, -1, 2, 0)
	r.Emit(trace.EvPatternConfirm, 33, 0, 9, 4, 0)
	r.MSHROccupancy(12, 5)
	r.Sample(100, 80, trace.Counters{PrefIssued: 1})
	return r
}

// TestPerfettoByteStableAndValid: identical recordings must render to
// identical bytes, the output must be valid JSON, and the runahead
// subthread must be named as its own track.
func TestPerfettoByteStableAndValid(t *testing.T) {
	var a, b bytes.Buffer
	if err := fillRecorder().WritePerfetto(&a, "bench (dvr)"); err != nil {
		t.Fatal(err)
	}
	if err := fillRecorder().WritePerfetto(&b, "bench (dvr)"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recordings rendered different Perfetto bytes")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("Perfetto output is not valid JSON:\n%s", a.String())
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	foundRunaheadTrack, foundEpisode := false, false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "runahead subthread" {
			foundRunaheadTrack = true
		}
		if ev.Name == "runahead-episode" && ev.Ph == "X" {
			foundEpisode = true
		}
	}
	if !foundRunaheadTrack {
		t.Error("no runahead-subthread track metadata")
	}
	if !foundEpisode {
		t.Error("no runahead-episode span")
	}
}

func TestIntervalsCSVByteStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := trace.WriteIntervalsCSV(&a, fillRecorder().Intervals()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteIntervalsCSV(&b, fillRecorder().Intervals()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical interval series rendered different CSV bytes")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d CSV lines, want header + 1 row:\n%s", len(lines), a.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Errorf("header has %d columns, row has %d", len(header), len(row))
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := trace.Dump{Bench: "bfs", Technique: "dvr", IntervalInsts: 100, Intervals: fillRecorder().Intervals()}
	if err := trace.WriteDumpJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out trace.Dump
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Bench != in.Bench || out.Technique != in.Technique || len(out.Intervals) != len(in.Intervals) {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

// TestSourceNamesMatchMem pins trace's source-name table to mem.Source
// numbering (trace cannot import mem, so the mirror is asserted here).
func TestSourceNamesMatchMem(t *testing.T) {
	want := map[mem.Source]string{
		mem.SrcDemand:   "demand",
		mem.SrcStridePF: "stride-pf",
		mem.SrcRunahead: "runahead",
		mem.SrcIMP:      "imp",
		mem.SrcOracle:   "oracle",
	}
	if len(want) != trace.NumSources {
		t.Fatalf("trace.NumSources = %d, mem has %d sources", trace.NumSources, len(want))
	}
	for src, name := range want {
		if got := trace.SourceString(uint64(src)); got != name {
			t.Errorf("SourceString(%d) = %q, want %q", src, got, name)
		}
	}
}

func TestMSHRHighWaterEvents(t *testing.T) {
	r := trace.New(trace.Config{Events: 16})
	r.MSHROccupancy(1, 3)
	r.MSHROccupancy(2, 2) // below high water: no event
	r.MSHROccupancy(3, 5)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d high-water events, want 2", len(evs))
	}
	if evs[0].Arg != 3 || evs[1].Arg != 5 {
		t.Errorf("high-water marks %d, %d; want 3, 5", evs[0].Arg, evs[1].Arg)
	}
	if r.MSHRHighWater() != 5 {
		t.Errorf("MSHRHighWater = %d, want 5", r.MSHRHighWater())
	}
}
