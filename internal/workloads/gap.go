package workloads

import (
	"dvr/internal/graphgen"
	"dvr/internal/interp"
	"dvr/internal/isa"
)

// defaultGAPROI is the timed instruction budget for the GAP kernels.
const defaultGAPROI = 300_000

// gapKernels maps registry names to the GAP builders.
var gapKernels = map[string]func(*graphgen.Graph) *Workload{
	"bc": BC, "bfs": BFS, "cc": CC, "pr": PR, "sssp": SSSP,
}

func init() {
	for name, build := range gapKernels {
		Register(Kernel{Name: name, NeedsGraph: true, Build: build, DefaultROI: defaultGAPROI})
	}
}

// BFS is Algorithm 1 of the paper: top-down breadth-first search over a
// worklist. The outer striding load reads the frontier (wl[i]); the inner
// striding load walks the edge array; the dependent indirect load checks
// visited[u], guarded by a data-dependent branch; inner trip counts are the
// (data-dependent) vertex degrees.
func BFS(g *graphgen.Graph) *Workload {
	m := interp.NewMemory()
	a := newArena()
	off, edges := storeGraph(m, a, g)
	visited := a.alloc(g.N)
	wlA := a.alloc(g.N)
	wlB := a.alloc(g.N)
	start := maxDegreeVertex(g)
	m.Store64(wlA, uint64(start))
	m.Store64(visited+uint64(start)*8, 1)

	b := isa.NewBuilder("bfs")
	b.Li(R0, 1)
	b.Li(R2, int64(wlA))
	b.Li(R14, int64(wlB))
	b.Li(R3, 1)
	b.Li(R4, int64(off))
	b.Li(R5, int64(edges))
	b.Li(R6, int64(visited))
	b.Label("level")
	b.Li(R1, 0)
	b.Li(R13, 0)
	b.Cmp(R7, R1, R3)
	b.Br(isa.GE, R7, "level_done")
	b.Label("outer")
	b.LoadIdx(R8, R2, R1, 0) // v = wl[i]
	b.LoadIdx(R9, R4, R8, 0) // j = off[v]
	b.AddI(R15, R8, 1)
	b.LoadIdx(R10, R4, R15, 0) // end = off[v+1]
	b.Cmp(R7, R9, R10)
	b.Br(isa.GE, R7, "inner_done")
	b.Label("inner")
	b.LoadIdx(R11, R5, R9, 0)  // u = edges[j]   (inner striding load)
	b.LoadIdx(R12, R6, R11, 0) // visited[u]     (dependent indirect load)
	b.Br(isa.NE, R12, "skip")
	b.StoreIdx(R6, R11, 0, R0)   // visited[u] = 1
	b.StoreIdx(R14, R13, 0, R11) // nextwl[nc] = u
	b.AddI(R13, R13, 1)
	b.Label("skip")
	emitWork(b, R15, 4)
	b.AddI(R9, R9, 1)
	b.Cmp(R7, R9, R10)
	b.Br(isa.LT, R7, "inner") // backward conditional branch (LCR/SBB)
	b.Label("inner_done")
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R3)
	b.Br(isa.LT, R7, "outer")
	b.Label("level_done")
	b.CmpI(R7, R13, 0)
	b.Br(isa.EQ, R7, "end")
	b.Mov(R15, R2)
	b.Mov(R2, R14)
	b.Mov(R14, R15)
	b.Mov(R3, R13)
	b.Jmp("level")
	b.Label("end")
	b.Halt()
	return &Workload{Name: "bfs", Prog: b.MustBuild(), Mem: m, Skip: 20_000, ROI: defaultGAPROI,
		Sym: map[string]uint64{"offsets": off, "edges": edges, "visited": visited, "wlA": wlA, "wlB": wlB, "start": uint64(start)}}
}

// BC is the forward (BFS-order path-counting) phase of Brandes' betweenness
// centrality: per edge it loads the neighbour's depth, then diverges three
// ways (newly discovered / same depth / older), accumulating shortest-path
// counts (sigma) with indirect read-modify-writes.
func BC(g *graphgen.Graph) *Workload {
	m := interp.NewMemory()
	a := newArena()
	off, edges := storeGraph(m, a, g)
	depth := a.alloc(2 * g.N) // depth[v] then sigma[v]
	sigmaOff := int64(g.N) * 8
	wlA := a.alloc(g.N)
	wlB := a.alloc(g.N)
	start := maxDegreeVertex(g)
	m.Store64(wlA, uint64(start))
	m.Store64(depth+uint64(start)*8, 1)
	m.Store64(depth+uint64(start)*8+uint64(sigmaOff), 1)

	b := isa.NewBuilder("bc")
	b.Li(R0, 2) // current depth
	b.Li(R2, int64(wlA))
	b.Li(R14, int64(wlB))
	b.Li(R3, 1)
	b.Li(R4, int64(off))
	b.Li(R5, int64(edges))
	b.Li(R6, int64(depth))
	b.Label("level")
	b.Li(R1, 0)
	b.Li(R13, 0)
	b.Cmp(R7, R1, R3)
	b.Br(isa.GE, R7, "level_done")
	b.Label("outer")
	b.LoadIdx(R8, R2, R1, 0) // v = wl[i]
	b.LoadIdx(R9, R4, R8, 0)
	b.AddI(R15, R8, 1)
	b.LoadIdx(R10, R4, R15, 0)
	b.LoadIdx(R8, R6, R8, sigmaOff) // sv = sigma[v]
	b.Cmp(R7, R9, R10)
	b.Br(isa.GE, R7, "inner_done")
	b.Label("inner")
	b.LoadIdx(R11, R5, R9, 0)  // u = edges[j]    (inner striding load)
	b.LoadIdx(R12, R6, R11, 0) // d = depth[u]   (dependent indirect load)
	b.Br(isa.EQ, R12, "newv")
	b.Cmp(R7, R12, R0)
	b.Br(isa.NE, R7, "skip")
	// Same depth: another shortest path; sigma[u] += sv.
	b.LoadIdx(R12, R6, R11, sigmaOff)
	b.Add(R12, R12, R8)
	b.StoreIdx(R6, R11, sigmaOff, R12)
	b.Jmp("skip")
	b.Label("newv")
	b.StoreIdx(R6, R11, 0, R0) // depth[u] = curdepth
	b.LoadIdx(R12, R6, R11, sigmaOff)
	b.Add(R12, R12, R8)
	b.StoreIdx(R6, R11, sigmaOff, R12)
	b.StoreIdx(R14, R13, 0, R11)
	b.AddI(R13, R13, 1)
	b.Label("skip")
	emitWork(b, R15, 4)
	b.AddI(R9, R9, 1)
	b.Cmp(R7, R9, R10)
	b.Br(isa.LT, R7, "inner")
	b.Label("inner_done")
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R3)
	b.Br(isa.LT, R7, "outer")
	b.Label("level_done")
	b.CmpI(R7, R13, 0)
	b.Br(isa.EQ, R7, "end")
	b.Mov(R15, R2)
	b.Mov(R2, R14)
	b.Mov(R14, R15)
	b.Mov(R3, R13)
	b.AddI(R0, R0, 1)
	b.Jmp("level")
	b.Label("end")
	b.Halt()
	return &Workload{Name: "bc", Prog: b.MustBuild(), Mem: m, Skip: 20_000, ROI: defaultGAPROI,
		Sym: map[string]uint64{"offsets": off, "edges": edges, "depth": depth, "sigma": depth + uint64(sigmaOff), "start": uint64(start)}}
}

// CC is connected components by label propagation over an edge list: the
// endpoints stride, the component labels are simple one-level indirections
// (the pattern IMP detects well).
func CC(g *graphgen.Graph) *Workload {
	m := interp.NewMemory()
	a := newArena()
	mEdges := g.M()
	srcA := a.alloc(mEdges)
	dstA := a.alloc(mEdges)
	comp := a.alloc(g.N)
	i := 0
	for v := 0; v < g.N; v++ {
		for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
			m.Store64(srcA+uint64(i)*8, uint64(v))
			m.Store64(dstA+uint64(i)*8, g.Edges[e])
			i++
		}
	}
	for v := 0; v < g.N; v++ {
		m.Store64(comp+uint64(v)*8, uint64(v))
	}

	b := isa.NewBuilder("cc")
	b.Li(R1, 0)
	b.Li(R2, int64(mEdges))
	b.Li(R3, int64(srcA))
	b.Li(R4, int64(dstA))
	b.Li(R5, int64(comp))
	b.Label("top")
	b.LoadIdx(R8, R3, R1, 0)  // u = src[e]   (striding)
	b.LoadIdx(R9, R4, R1, 0)  // v = dst[e]   (striding)
	b.LoadIdx(R10, R5, R8, 0) // cu = comp[u] (indirect)
	b.LoadIdx(R11, R5, R9, 0) // cv = comp[v] (indirect)
	b.Cmp(R7, R10, R11)
	b.Br(isa.LT, R7, "cult")
	b.Br(isa.GT, R7, "cugt")
	b.Jmp("next")
	b.Label("cult")
	b.StoreIdx(R5, R9, 0, R10)
	b.Jmp("next")
	b.Label("cugt")
	b.StoreIdx(R5, R8, 0, R11)
	b.Label("next")
	emitWork(b, R15, 8)
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "top")
	b.Li(R1, 0)
	b.Jmp("top") // next propagation pass
	return &Workload{Name: "cc", Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultGAPROI,
		Sym: map[string]uint64{"src": srcA, "dst": dstA, "comp": comp, "m": uint64(mEdges)}}
}

// PR is pull-style PageRank: per vertex it walks its in-edge list (inner
// striding load) and gathers the neighbours' ranks (dependent indirect
// load), with no control-flow divergence along the chain.
func PR(g *graphgen.Graph) *Workload {
	m := interp.NewMemory()
	a := newArena()
	off, edges := storeGraph(m, a, g)
	rank := a.alloc(g.N)
	next := a.alloc(g.N)
	fill(m, rank, g.N, 1)

	b := isa.NewBuilder("pr")
	b.Li(R1, 0)
	b.Li(R2, int64(g.N))
	b.Li(R4, int64(off))
	b.Li(R5, int64(edges))
	b.Li(R6, int64(rank))
	b.Li(R14, int64(next))
	b.Label("outer")
	b.LoadIdx(R9, R4, R1, 0)
	b.AddI(R15, R1, 1)
	b.LoadIdx(R10, R4, R15, 0)
	b.Li(R13, 0)
	b.Cmp(R7, R9, R10)
	b.Br(isa.GE, R7, "vdone")
	b.Label("inner")
	b.LoadIdx(R11, R5, R9, 0)  // u = edges[j]  (striding)
	b.LoadIdx(R12, R6, R11, 0) // rank[u]       (indirect, FLR)
	b.Add(R13, R13, R12)
	emitWork(b, R3, 4)
	b.AddI(R9, R9, 1)
	b.Cmp(R7, R9, R10)
	b.Br(isa.LT, R7, "inner")
	b.Label("vdone")
	b.ShrI(R13, R13, 1) // damping stand-in
	b.AddI(R13, R13, 1)
	b.StoreIdx(R14, R1, 0, R13)
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "outer")
	// Next iteration: swap rank arrays.
	b.Mov(R15, R6)
	b.Mov(R6, R14)
	b.Mov(R14, R15)
	b.Li(R1, 0)
	b.Jmp("outer")
	return &Workload{Name: "pr", Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultGAPROI,
		Sym: map[string]uint64{"offsets": off, "edges": edges, "rank": rank, "next": next}}
}

// SSSP is worklist-driven Bellman-Ford: edge weights ride next to the edge
// array (same index), the relaxation loads dist[u] indirectly and diverges
// on the comparison outcome.
func SSSP(g *graphgen.Graph) *Workload {
	m := interp.NewMemory()
	a := newArena()
	off := a.alloc(g.N + 1)
	m.StoreSlice(off, g.Offsets)
	mEdges := g.M()
	edges := a.alloc(2 * mEdges) // edges[0..m), then weights[0..m)
	m.StoreSlice(edges, g.Edges)
	weightsOff := int64(mEdges) * 8
	s := uint64(77)
	for j := 0; j < mEdges; j++ {
		s = isa.Mix64(s)
		m.Store64(edges+uint64(weightsOff)+uint64(j)*8, 1+s%16)
	}
	dist := a.alloc(g.N)
	const inf = int64(1) << 40
	fill(m, dist, g.N, uint64(inf))
	const wlWords = 1 << 18
	wlA := a.alloc(wlWords)
	wlB := a.alloc(wlWords)
	start := maxDegreeVertex(g)
	m.Store64(wlA, uint64(start))
	m.Store64(dist+uint64(start)*8, 0)

	b := isa.NewBuilder("sssp")
	b.Li(R2, int64(wlA))
	b.Li(R14, int64(wlB))
	b.Li(R3, 1)
	b.Li(R4, int64(off))
	b.Li(R5, int64(edges))
	b.Li(R6, int64(dist))
	b.Label("level")
	b.Li(R1, 0)
	b.Li(R13, 0)
	b.Cmp(R7, R1, R3)
	b.Br(isa.GE, R7, "level_done")
	b.Label("outer")
	b.LoadIdx(R8, R2, R1, 0) // v = wl[i]
	b.LoadIdx(R9, R4, R8, 0)
	b.AddI(R15, R8, 1)
	b.LoadIdx(R10, R4, R15, 0)
	b.LoadIdx(R8, R6, R8, 0) // dv = dist[v] (v dead afterwards)
	b.Cmp(R7, R9, R10)
	b.Br(isa.GE, R7, "inner_done")
	b.Label("inner")
	b.LoadIdx(R11, R5, R9, 0)          // u = edges[j]      (striding)
	b.LoadIdx(R12, R5, R9, weightsOff) // w = weights[j]    (striding)
	b.Add(R12, R12, R8)                // nd = dv + w
	b.LoadIdx(R15, R6, R11, 0)         // du = dist[u]      (indirect)
	b.Cmp(R7, R12, R15)
	b.Br(isa.GE, R7, "skip")
	b.StoreIdx(R6, R11, 0, R12)  // dist[u] = nd
	b.StoreIdx(R14, R13, 0, R11) // push u
	b.AddI(R13, R13, 1)
	b.AndI(R13, R13, wlWords-1) // bounded worklist (wraps rather than grows)
	b.Label("skip")
	emitWork(b, R0, 4)
	b.AddI(R9, R9, 1)
	b.Cmp(R7, R9, R10)
	b.Br(isa.LT, R7, "inner")
	b.Label("inner_done")
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R3)
	b.Br(isa.LT, R7, "outer")
	b.Label("level_done")
	b.CmpI(R7, R13, 0)
	b.Br(isa.EQ, R7, "end")
	b.Mov(R15, R2)
	b.Mov(R2, R14)
	b.Mov(R14, R15)
	b.Mov(R3, R13)
	b.Jmp("level")
	b.Label("end")
	b.Halt()
	return &Workload{Name: "sssp", Prog: b.MustBuild(), Mem: m, Skip: 20_000, ROI: defaultGAPROI,
		Sym: map[string]uint64{"offsets": off, "edges": edges, "weights": edges + uint64(weightsOff), "dist": dist, "start": uint64(start)}}
}

// GAPSpecs returns the five GAP kernels over one graph input. When the
// input carries declarative Params, each spec also carries the equivalent
// Ref, so the suite is wire-transportable.
func GAPSpecs(input graphgen.Input) []Spec {
	g := input.Build()
	mk := func(name string, build func(*graphgen.Graph) *Workload) Spec {
		sp := Spec{
			Name:  name + "_" + input.Name,
			Build: func() *Workload { return build(g) },
			ROI:   defaultGAPROI,
		}
		if !input.Params.Zero() {
			p := input.Params
			sp.Ref = Ref{Kernel: name, Graph: &p, ROI: defaultGAPROI}
		}
		return sp
	}
	return []Spec{
		mk("bc", BC),
		mk("bfs", BFS),
		mk("cc", CC),
		mk("pr", PR),
		mk("sssp", SSSP),
	}
}
