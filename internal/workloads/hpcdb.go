package workloads

import (
	"dvr/internal/graphgen"
	"dvr/internal/interp"
	"dvr/internal/isa"
)

// defaultHPCROI is the timed instruction budget for the HPC/DB kernels.
const defaultHPCROI = 300_000

// hpcdbKernels maps registry names to the HPC/DB builders, in suite order.
var hpcdbKernels = []struct {
	name  string
	build func() *Workload
}{
	{"camel", Camel},
	{"graph500", Graph500},
	{"hj2", HJ2},
	{"hj8", HJ8},
	{"kangaroo", Kangaroo},
	{"nas-cg", NASCG},
	{"nas-is", NASIS},
	{"randomaccess", RandomAccess},
}

func init() {
	for _, k := range hpcdbKernels {
		build := k.build
		Register(Kernel{
			Name:       k.name,
			Build:      func(*graphgen.Graph) *Workload { return build() },
			DefaultROI: defaultHPCROI,
		})
	}
}

// Camel is the Figure 1 kernel: C[hash(B[hash(A[i])])]++ — a two-level
// indirect chain through hash functions, the motivating pattern of Vector
// Runahead.
func Camel() *Workload {
	const n = 1 << 20   // keys
	const tbl = 1 << 21 // B and C entries
	m := interp.NewMemory()
	a := newArena()
	keys := a.alloc(n)
	bTbl := a.alloc(tbl)
	cTbl := a.alloc(tbl)
	randWords(m, keys, n, 101, 1<<32)
	randWords(m, bTbl, tbl, 102, 1<<32)

	b := isa.NewBuilder("camel")
	b.Li(R1, 0)
	b.Li(R2, n)
	b.Li(R3, int64(keys))
	b.Li(R4, int64(bTbl))
	b.Li(R5, int64(cTbl))
	b.Li(R11, tbl-1)
	b.Label("top")
	b.LoadIdx(R8, R3, R1, 0) // a = A[i]       (striding)
	emitHash(b, R8, R12)
	b.Op3(isa.And, R8, R8, R11)
	b.LoadIdx(R9, R4, R8, 0) // b = B[h1]      (indirect level 1)
	emitHash(b, R9, R12)
	b.Op3(isa.And, R9, R9, R11)
	b.LoadIdx(R10, R5, R9, 0) // c = C[h2]     (indirect level 2, FLR)
	b.AddI(R10, R10, 1)
	b.StoreIdx(R5, R9, 0, R10)
	emitWork(b, R15, 24)
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "top")
	b.Li(R1, 0)
	b.Jmp("top")
	return &Workload{Name: "camel", Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultHPCROI,
		Sym: map[string]uint64{"keys": keys, "b": bTbl, "c": cTbl, "n": n, "tbl": tbl}}
}

// Graph500 is the Graph500 top-down BFS step on a Kronecker graph: like
// BFS but also recording parent[u], the reference kernel's signature write.
func Graph500() *Workload {
	g := graphgen.Kronecker(16, 16, 500)
	m := interp.NewMemory()
	a := newArena()
	off, edges := storeGraph(m, a, g)
	visited := a.alloc(2 * g.N) // visited[v] then parent[v]
	parentOff := int64(g.N) * 8
	wlA := a.alloc(g.N)
	wlB := a.alloc(g.N)
	start := maxDegreeVertex(g)
	m.Store64(wlA, uint64(start))
	m.Store64(visited+uint64(start)*8, 1)

	b := isa.NewBuilder("graph500")
	b.Li(R0, 1)
	b.Li(R2, int64(wlA))
	b.Li(R14, int64(wlB))
	b.Li(R3, 1)
	b.Li(R4, int64(off))
	b.Li(R5, int64(edges))
	b.Li(R6, int64(visited))
	b.Label("level")
	b.Li(R1, 0)
	b.Li(R13, 0)
	b.Cmp(R7, R1, R3)
	b.Br(isa.GE, R7, "level_done")
	b.Label("outer")
	b.LoadIdx(R8, R2, R1, 0)
	b.LoadIdx(R9, R4, R8, 0)
	b.AddI(R15, R8, 1)
	b.LoadIdx(R10, R4, R15, 0)
	b.Cmp(R7, R9, R10)
	b.Br(isa.GE, R7, "inner_done")
	b.Label("inner")
	b.LoadIdx(R11, R5, R9, 0)  // u = edges[j]  (striding)
	b.LoadIdx(R12, R6, R11, 0) // visited[u]    (indirect)
	b.Br(isa.NE, R12, "skip")
	b.StoreIdx(R6, R11, 0, R0)
	b.StoreIdx(R6, R11, parentOff, R8) // parent[u] = v
	b.StoreIdx(R14, R13, 0, R11)
	b.AddI(R13, R13, 1)
	b.Label("skip")
	emitWork(b, R0, 4)
	b.AddI(R9, R9, 1)
	b.Cmp(R7, R9, R10)
	b.Br(isa.LT, R7, "inner")
	b.Label("inner_done")
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R3)
	b.Br(isa.LT, R7, "outer")
	b.Label("level_done")
	b.CmpI(R7, R13, 0)
	b.Br(isa.EQ, R7, "end")
	b.Mov(R15, R2)
	b.Mov(R2, R14)
	b.Mov(R14, R15)
	b.Mov(R3, R13)
	b.Jmp("level")
	b.Label("end")
	b.Halt()
	return &Workload{Name: "graph500", Prog: b.MustBuild(), Mem: m, Skip: 20_000, ROI: defaultHPCROI,
		Sym: map[string]uint64{"offsets": off, "edges": edges, "visited": visited, "parent": visited + uint64(parentOff), "start": uint64(start)}}
}

// hashJoin builds the HJ probe kernel with the given chain depth: each
// probe hashes the key and chases `depth` dependent table lookups.
func hashJoin(name string, depth int) *Workload {
	const n = 1 << 20
	const tbl = 1 << 21
	m := interp.NewMemory()
	a := newArena()
	keys := a.alloc(n)
	ht := a.alloc(tbl)
	randWords(m, keys, n, 201, 1<<32)
	randWords(m, ht, tbl, 202, tbl) // table entries index back into the table

	b := isa.NewBuilder(name)
	b.Li(R1, 0)
	b.Li(R2, n)
	b.Li(R3, int64(keys))
	b.Li(R4, int64(ht))
	b.Li(R11, tbl-1)
	b.Label("top")
	b.LoadIdx(R8, R3, R1, 0) // k = keys[i]  (striding)
	for d := 0; d < depth; d++ {
		emitHash(b, R8, R12)
		b.Op3(isa.And, R8, R8, R11)
		b.LoadIdx(R8, R4, R8, 0) // chase one level
	}
	b.Add(R10, R10, R8)
	if depth <= 4 {
		emitWork(b, R15, 20)
	} else {
		emitWork(b, R15, 8)
	}
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "top")
	b.Li(R1, 0)
	b.Jmp("top")
	return &Workload{Name: name, Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultHPCROI,
		Sym: map[string]uint64{"keys": keys, "ht": ht, "n": n, "tbl": tbl}}
}

// HJ2 is the hash-join probe with a 2-deep dependent chain.
func HJ2() *Workload { return hashJoin("hj2", 2) }

// HJ8 is the hash-join probe with an 8-deep dependent chain.
func HJ8() *Workload { return hashJoin("hj8", 8) }

// Kangaroo hops through two dependent index tables and then diverges on
// the parity of the result, loading from one of two payload arrays.
func Kangaroo() *Workload {
	const n = 1 << 20
	const tbl = 1 << 21
	const pay = 1 << 20
	m := interp.NewMemory()
	a := newArena()
	keys := a.alloc(n)
	n1 := a.alloc(tbl)
	n2 := a.alloc(tbl)
	cd := a.alloc(2 * pay) // C then D
	dOff := int64(pay) * 8
	randWords(m, keys, n, 301, tbl)
	randWords(m, n1, tbl, 302, tbl)
	randWords(m, n2, tbl, 303, pay)
	randWords(m, cd, 2*pay, 304, 1<<32)

	b := isa.NewBuilder("kangaroo")
	b.Li(R1, 0)
	b.Li(R2, n)
	b.Li(R3, int64(keys))
	b.Li(R4, int64(n1))
	b.Li(R5, int64(n2))
	b.Li(R6, int64(cd))
	b.Label("top")
	b.LoadIdx(R8, R3, R1, 0)  // k = keys[i]  (striding)
	b.LoadIdx(R9, R4, R8, 0)  // p = N1[k]
	b.LoadIdx(R10, R5, R9, 0) // q = N2[p]
	emitWork(b, R15, 20)
	b.AndI(R7, R10, 1)
	b.Br(isa.EQ, R7, "even")
	b.LoadIdx(R12, R6, R10, 0) // C[q]
	b.Jmp("acc")
	b.Label("even")
	b.LoadIdx(R12, R6, R10, dOff) // D[q]
	b.Label("acc")
	b.Add(R13, R13, R12)
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "top")
	b.Li(R1, 0)
	b.Jmp("top")
	return &Workload{Name: "kangaroo", Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultHPCROI,
		Sym: map[string]uint64{"keys": keys, "n1": n1, "n2": n2, "cd": cd}}
}

// NASCG is the conjugate-gradient sparse matrix-vector product: per row,
// a striding walk of the column indices with an indirect gather of x[col].
func NASCG() *Workload {
	const rows = 1 << 14
	const rowLen = 48
	const nnz = rows * rowLen
	const xn = 1 << 20
	m := interp.NewMemory()
	a := newArena()
	rp := a.alloc(rows + 1)
	y := a.alloc(rows)
	yOff := int64(y) - int64(rp)
	col := a.alloc(2 * nnz) // col[0..nnz) then aval[0..nnz)
	avOff := int64(nnz) * 8
	x := a.alloc(xn)
	for r := 0; r <= rows; r++ {
		m.Store64(rp+uint64(r)*8, uint64(r*rowLen))
	}
	randWords(m, col, nnz, 401, xn)
	randWords(m, col+uint64(avOff), nnz, 402, 1<<16)
	randWords(m, x, xn, 403, 1<<16)

	b := isa.NewBuilder("nas-cg")
	b.Li(R1, 0)
	b.Li(R2, rows)
	b.Li(R4, int64(rp))
	b.Li(R5, int64(col))
	b.Li(R6, int64(x))
	b.Label("outer")
	b.LoadIdx(R9, R4, R1, 0)
	b.AddI(R15, R1, 1)
	b.LoadIdx(R10, R4, R15, 0)
	b.Li(R13, 0)
	b.Cmp(R7, R9, R10)
	b.Br(isa.GE, R7, "rdone")
	b.Label("inner")
	b.LoadIdx(R11, R5, R9, 0)     // c = col[j]   (striding)
	b.LoadIdx(R12, R6, R11, 0)    // xv = x[c]    (indirect, FLR)
	b.LoadIdx(R15, R5, R9, avOff) // av = a[j]
	b.Mul(R12, R12, R15)
	b.Add(R13, R13, R12)
	emitWork(b, R3, 12)
	b.AddI(R9, R9, 1)
	b.Cmp(R7, R9, R10)
	b.Br(isa.LT, R7, "inner")
	b.Label("rdone")
	b.StoreIdx(R4, R1, yOff, R13)
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "outer")
	b.Li(R1, 0)
	b.Jmp("outer")
	return &Workload{Name: "nas-cg", Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultHPCROI,
		Sym: map[string]uint64{"rp": rp, "col": col, "aval": col + uint64(avOff), "x": x, "y": y, "rows": rows, "rowlen": rowLen}}
}

// NASIS is the integer-sort histogram: count[key[i]]++, one level of
// simple indirection (the pattern IMP handles).
func NASIS() *Workload {
	const n = 1 << 21
	const buckets = 1 << 21
	m := interp.NewMemory()
	a := newArena()
	keys := a.alloc(n)
	count := a.alloc(buckets)
	randWords(m, keys, n, 501, buckets)

	b := isa.NewBuilder("nas-is")
	b.Li(R1, 0)
	b.Li(R2, n)
	b.Li(R3, int64(keys))
	b.Li(R4, int64(count))
	b.Label("top")
	b.LoadIdx(R8, R3, R1, 0) // k = key[i]   (striding)
	b.LoadIdx(R9, R4, R8, 0) // count[k]     (indirect)
	b.AddI(R9, R9, 1)
	b.StoreIdx(R4, R8, 0, R9)
	emitWork(b, R15, 14)
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "top")
	b.Li(R1, 0)
	b.Jmp("top")
	return &Workload{Name: "nas-is", Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultHPCROI,
		Sym: map[string]uint64{"keys": keys, "count": count, "n": n, "buckets": buckets}}
}

// RandomAccess is HPCC GUPS: T[r & mask] ^= r over a table far larger than
// the LLC.
func RandomAccess() *Workload {
	const n = 1 << 20
	const tbl = 1 << 22
	m := interp.NewMemory()
	a := newArena()
	ran := a.alloc(n)
	t := a.alloc(tbl)
	randWords(m, ran, n, 601, 0)
	randWords(m, t, tbl, 602, 0)

	b := isa.NewBuilder("randomaccess")
	b.Li(R1, 0)
	b.Li(R2, n)
	b.Li(R3, int64(ran))
	b.Li(R4, int64(t))
	b.Li(R11, tbl-1)
	b.Label("top")
	b.LoadIdx(R8, R3, R1, 0) // r = ran[i]   (striding)
	b.Op3(isa.And, R9, R8, R11)
	b.LoadIdx(R10, R4, R9, 0) // T[r&mask]   (indirect)
	b.Xor(R10, R10, R8)
	b.StoreIdx(R4, R9, 0, R10)
	emitWork(b, R15, 14)
	b.AddI(R1, R1, 1)
	b.Cmp(R7, R1, R2)
	b.Br(isa.LT, R7, "top")
	b.Li(R1, 0)
	b.Jmp("top")
	return &Workload{Name: "randomaccess", Prog: b.MustBuild(), Mem: m, Skip: 10_000, ROI: defaultHPCROI,
		Sym: map[string]uint64{"ran": ran, "t": t, "n": n, "tbl": tbl}}
}

// HPCDBSpecs returns the eight hpc-db benchmarks, each carrying its
// declarative Ref.
func HPCDBSpecs() []Spec {
	specs := make([]Spec, 0, len(hpcdbKernels))
	for _, k := range hpcdbKernels {
		specs = append(specs, Spec{
			Name:  k.name,
			Build: k.build,
			ROI:   defaultHPCROI,
			Ref:   Ref{Kernel: k.name, ROI: defaultHPCROI},
		})
	}
	return specs
}
