package workloads

import (
	"fmt"
	"sort"
	"sync"

	"dvr/internal/graphgen"
)

// Ref is the declarative, serializable form of a benchmark: a kernel name
// from the registry, the graph parameters when the kernel consumes one, and
// the timed instruction budget. Unlike Spec's Build closure, a Ref can
// cross a process boundary (the dvrd wire API carries it) and be hashed
// into a content-addressed cache key. Resolve turns it back into a
// runnable Spec.
type Ref struct {
	Kernel string           `json:"kernel"`
	Graph  *graphgen.Params `json:"graph,omitempty"`
	ROI    uint64           `json:"roi,omitempty"` // 0 = kernel default
}

// SpecName returns the benchmark name Resolve will give the spec: the bare
// kernel name, suffixed with the graph label for graph kernels (matching
// GAPSpecs' naming, so server-side and in-process results line up).
func (r Ref) SpecName() string {
	if r.Graph != nil {
		return r.Kernel + "_" + r.Graph.Label()
	}
	return r.Kernel
}

// Kernel is a registered benchmark builder. Graph kernels (NeedsGraph)
// receive the instantiated input graph; the others receive nil.
type Kernel struct {
	Name       string
	NeedsGraph bool
	Build      func(g *graphgen.Graph) *Workload
	DefaultROI uint64
}

var registry = struct {
	sync.RWMutex
	m map[string]Kernel
}{m: make(map[string]Kernel)}

// Register adds a kernel to the registry. Registering an empty name, a nil
// builder, or a name twice is a programming error and panics. The built-in
// kernels register themselves; callers may add their own (see
// examples/customkernel) to make custom benchmarks Ref-addressable.
func Register(k Kernel) {
	if k.Name == "" || k.Build == nil {
		panic("workloads: Register needs a name and a builder")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[k.Name]; dup {
		panic(fmt.Sprintf("workloads: kernel %q registered twice", k.Name))
	}
	registry.m[k.Name] = k
}

// Kernels returns the registered kernel names, sorted.
func Kernels() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolve validates a Ref against the registry and returns a runnable
// Spec. The returned Build closure generates the graph (when any) and the
// workload image on each call; callers that run one Ref many times should
// memoize the base and Fork it, as the experiment catalog and the dvrd
// server do.
func Resolve(r Ref) (Spec, error) {
	registry.RLock()
	k, ok := registry.m[r.Kernel]
	registry.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("workloads: unknown kernel %q (known: %v)", r.Kernel, Kernels())
	}
	if k.NeedsGraph {
		if r.Graph == nil {
			return Spec{}, fmt.Errorf("workloads: kernel %q needs graph parameters", r.Kernel)
		}
		if err := r.Graph.Validate(); err != nil {
			return Spec{}, err
		}
	} else if r.Graph != nil {
		return Spec{}, fmt.Errorf("workloads: kernel %q does not take a graph", r.Kernel)
	}
	roi := r.ROI
	if roi == 0 {
		roi = k.DefaultROI
	}
	spec := Spec{
		Name: r.SpecName(),
		ROI:  roi,
		Ref:  r,
		Build: func() *Workload {
			var g *graphgen.Graph
			if k.NeedsGraph {
				var err error
				g, err = r.Graph.Generate()
				if err != nil {
					// Validated above; a failure here is a registry bug.
					panic(err)
				}
			}
			return k.Build(g)
		},
	}
	spec.Ref.ROI = roi
	return spec, nil
}
