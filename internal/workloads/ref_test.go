package workloads

import (
	"encoding/json"
	"reflect"
	"testing"

	"dvr/internal/graphgen"
)

func TestResolveUnknownKernel(t *testing.T) {
	if _, err := Resolve(Ref{Kernel: "no-such-kernel"}); err == nil {
		t.Fatal("expected error for unknown kernel")
	}
}

func TestResolveGraphRequirements(t *testing.T) {
	if _, err := Resolve(Ref{Kernel: "bfs"}); err == nil {
		t.Error("graph kernel without graph params should fail to resolve")
	}
	p := graphgen.Params{Gen: graphgen.GenKronecker, Scale: 8, EdgeFactor: 4, Seed: 1, Name: "T"}
	if _, err := Resolve(Ref{Kernel: "camel", Graph: &p}); err == nil {
		t.Error("non-graph kernel with graph params should fail to resolve")
	}
	if _, err := Resolve(Ref{Kernel: "bfs", Graph: &graphgen.Params{Gen: "bogus"}}); err == nil {
		t.Error("invalid graph params should fail to resolve")
	}
}

func TestResolveNamesAndDefaults(t *testing.T) {
	p := graphgen.Params{Gen: graphgen.GenKronecker, Scale: 8, EdgeFactor: 4, Seed: 1, Name: "T"}
	spec, err := Resolve(Ref{Kernel: "bfs", Graph: &p})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "bfs_T" {
		t.Errorf("spec name = %q, want bfs_T (matching GAPSpecs naming)", spec.Name)
	}
	if spec.ROI == 0 || spec.Ref.ROI != spec.ROI {
		t.Errorf("default ROI not normalized: spec.ROI=%d ref.ROI=%d", spec.ROI, spec.Ref.ROI)
	}
	w := spec.Build()
	if w.Name != "bfs" {
		t.Errorf("built workload = %q, want bfs", w.Name)
	}

	hp, err := Resolve(Ref{Kernel: "nas-is"})
	if err != nil {
		t.Fatal(err)
	}
	if hp.Name != "nas-is" || hp.ROI == 0 {
		t.Errorf("hpcdb resolve: name=%q roi=%d", hp.Name, hp.ROI)
	}
}

func TestRefJSONRoundTrip(t *testing.T) {
	p := graphgen.Params{Gen: graphgen.GenPowerLaw, N: 1000, M: 8000, Alpha: 2.3, Seed: 9, Name: "RT"}
	in := Ref{Kernel: "pr", Graph: &p, ROI: 12_345}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Ref
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the ref:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSuiteSpecsCarryRefs(t *testing.T) {
	in := graphgen.Params{Gen: graphgen.GenKronecker, Scale: 8, EdgeFactor: 4, Seed: 3, Name: "RS"}.Input()
	for _, sp := range GAPSpecs(in) {
		if sp.Ref.Kernel == "" || sp.Ref.Graph == nil {
			t.Errorf("%s: GAP spec over declarative input missing ref", sp.Name)
		}
		if sp.Ref.SpecName() != sp.Name {
			t.Errorf("ref spec name %q != spec name %q", sp.Ref.SpecName(), sp.Name)
		}
	}
	for _, sp := range HPCDBSpecs() {
		if sp.Ref.Kernel != sp.Name {
			t.Errorf("%s: hpcdb spec missing ref", sp.Name)
		}
	}
}

func TestWithROIKeepsRefFaithful(t *testing.T) {
	sp := HPCDBSpecs()[0].WithROI(777)
	if sp.ROI != 777 || sp.Ref.ROI != 777 {
		t.Errorf("WithROI: spec.ROI=%d ref.ROI=%d, want both 777", sp.ROI, sp.Ref.ROI)
	}
}
