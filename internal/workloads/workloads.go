// Package workloads implements the paper's 13 benchmarks as micro-ISA
// programs with their memory images: the five GAP graph kernels (bc, bfs,
// cc, pr, sssp) and the eight HPC/database kernels (camel, graph500, hj2,
// hj8, kangaroo, nas-cg, nas-is, randomaccess). Each kernel reproduces the
// dynamic structure DVR keys off: striding loads, dependent indirect
// chains, compare-plus-backward-branch loops, and (where the original has
// them) data-dependent inner-loop trip counts and control-flow divergence.
package workloads

import (
	"dvr/internal/graphgen"
	"dvr/internal/interp"
	"dvr/internal/isa"
)

// Register aliases used by the kernels.
const (
	R0 isa.Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// Workload is an instantiated benchmark: a program plus the memory image it
// runs against. Because the main thread's stores mutate the image, build a
// fresh Workload per simulation run.
type Workload struct {
	Name string
	Prog *isa.Program
	Mem  *interp.Memory
	Skip uint64 // functional fast-forward before the timed region
	ROI  uint64 // suggested timed instruction count
	// Sym maps array names to their base addresses in the memory image,
	// for inspection and verification.
	Sym map[string]uint64
}

// Frontend returns the workload's instruction source, fast-forwarded past
// the untimed warmup region. Call once per Workload instance. A zero Skip
// means no fast-forward (interp.Run treats 0 as "run everything", which
// would consume the whole program before the timed region started).
func (w *Workload) Frontend() *interp.Interp {
	it := interp.New(w.Prog, w.Mem)
	if w.Skip > 0 {
		it.Run(w.Skip)
	}
	return it
}

// Fork returns a copy of the workload over a copy-on-write fork of its
// memory image. Simulations mutate the image they run against, so sharing
// one built Workload across runs requires a Fork per run; the pristine
// base is built once and never simulated directly. Forks of one base may
// run concurrently.
func (w *Workload) Fork() *Workload {
	c := *w
	c.Mem = w.Mem.Fork()
	return &c
}

// Spec is a buildable benchmark for the experiment harness. Build is the
// in-process form; Ref, when set (the built-in suites set it), is the
// equivalent declarative form that can be serialized, shipped to a dvrd
// server and hashed into a cache key. A Spec with a zero Ref (custom
// closure) still runs locally but cannot cross a process boundary.
type Spec struct {
	Name  string
	Build func() *Workload
	ROI   uint64
	Ref   Ref
}

// WithROI returns the spec with its timed budget (and its Ref's, so the
// declarative form stays faithful) replaced.
func (s Spec) WithROI(roi uint64) Spec {
	s.ROI = roi
	if s.Ref.Kernel != "" {
		s.Ref.ROI = roi
	}
	return s
}

// arena hands out non-overlapping, page-aligned memory regions.
type arena struct{ next uint64 }

func newArena() *arena { return &arena{next: 1 << 20} }

// alloc reserves n 64-bit words and returns the base address.
func (a *arena) alloc(n int) uint64 {
	addr := a.next
	a.next += uint64(n) * 8
	a.next = (a.next + 4095) &^ 4095
	return addr
}

// storeGraph writes g's CSR arrays into memory and returns their bases.
func storeGraph(m *interp.Memory, a *arena, g *graphgen.Graph) (offBase, edgeBase uint64) {
	offBase = a.alloc(g.N + 1)
	m.StoreSlice(offBase, g.Offsets)
	edgeBase = a.alloc(len(g.Edges))
	m.StoreSlice(edgeBase, g.Edges)
	return offBase, edgeBase
}

// maxDegreeVertex returns the vertex with the highest out-degree: the BFS
// and SSSP source, so traversals reach the bulk of the graph quickly.
func maxDegreeVertex(g *graphgen.Graph) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// fill writes n words of val starting at base.
func fill(m *interp.Memory, base uint64, n int, val uint64) {
	for i := 0; i < n; i++ {
		m.Store64(base+uint64(i)*8, val)
	}
}

// randWords fills n words with deterministic pseudo-random values, reduced
// modulo mod when mod is nonzero.
func randWords(m *interp.Memory, base uint64, n int, seed uint64, mod uint64) {
	vals := make([]uint64, n)
	s := seed
	for i := range vals {
		s = isa.Mix64(s + uint64(i))
		v := s
		if mod != 0 {
			v %= mod
		}
		vals[i] = v
	}
	m.StoreSlice(base, vals)
}

// emitHash emits an inlined multi-instruction integer mix of r (two
// xor-shift-multiply rounds), as a compiled hash function would appear in
// the instruction stream. It preserves the dependence chain through r, so
// DVR's taint tracking follows it; tmp is clobbered.
func emitHash(b *isa.Builder, r, tmp isa.Reg) {
	b.ShrI(tmp, r, 30)
	b.Xor(r, r, tmp)
	b.MulI(r, r, 0x2545f4914f6cdd1d)
	b.ShrI(tmp, r, 27)
	b.Xor(r, r, tmp)
	b.MulI(r, r, 0x27220a95fe72bd39)
}

// emitWork emits n dependent single-cycle ALU instructions on a scratch
// register: the address computation, bookkeeping and spill traffic that
// surrounds the memory chain in the real compiled kernels. It keeps the
// simulated per-iteration instruction counts realistic so the baseline
// core's window covers a realistic number of loop iterations.
func emitWork(b *isa.Builder, scratch isa.Reg, n int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.AddI(scratch, scratch, 1)
		} else {
			b.OpI(isa.Xor, scratch, scratch, 0x5bd1)
		}
	}
}
