package workloads

import (
	"testing"

	"dvr/internal/graphgen"
	"dvr/internal/interp"
	"dvr/internal/isa"
)

func smallGraph() *graphgen.Graph { return graphgen.Kronecker(9, 6, 5) }

// runToHalt executes the workload functionally until it halts (traversal
// kernels) with a safety bound.
func runToHalt(t *testing.T, w *Workload, bound uint64) *interp.Interp {
	t.Helper()
	it := interp.New(w.Prog, w.Mem)
	it.Run(bound)
	if !it.St.Halted {
		t.Fatalf("%s did not halt within %d instructions", w.Name, bound)
	}
	return it
}

// runPasses executes until the restart instruction (li r1,0 at len-2) has
// been reached `passes` times, i.e. exactly `passes` full passes ran.
func runPasses(t *testing.T, w *Workload, passes int, bound uint64) {
	t.Helper()
	restart := len(w.Prog.Code) - 2
	if w.Prog.Code[restart].Op != isa.Li {
		t.Fatalf("%s: expected restart li at pc %d, got %v", w.Name, restart, w.Prog.Code[restart])
	}
	it := interp.New(w.Prog, w.Mem)
	seen := 0
	for i := uint64(0); i < bound; i++ {
		di, ok := it.Step()
		if !ok {
			t.Fatalf("%s halted unexpectedly", w.Name)
		}
		if di.PC == restart {
			seen++
			if seen == passes {
				return
			}
		}
	}
	t.Fatalf("%s: only %d/%d passes within %d instructions", w.Name, seen, passes, bound)
}

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	g := smallGraph()
	builders := map[string]func() *Workload{
		"bc":           func() *Workload { return BC(g) },
		"bfs":          func() *Workload { return BFS(g) },
		"cc":           func() *Workload { return CC(g) },
		"pr":           func() *Workload { return PR(g) },
		"sssp":         func() *Workload { return SSSP(g) },
		"camel":        Camel,
		"graph500":     Graph500,
		"hj2":          HJ2,
		"hj8":          HJ8,
		"kangaroo":     Kangaroo,
		"nas-cg":       NASCG,
		"nas-is":       NASIS,
		"randomaccess": RandomAccess,
	}
	for name, build := range builders {
		w := build()
		if err := w.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if w.Sym == nil {
			t.Errorf("%s: no symbol table", name)
		}
		// Every workload must run its warmup region without halting.
		it := interp.New(w.Prog, w.Mem)
		if n := it.Run(w.Skip + 1000); n < w.Skip {
			t.Errorf("%s: halted during warmup after %d instructions", name, n)
		}
	}
}

func TestBFSMatchesReferenceReachability(t *testing.T) {
	g := smallGraph()
	w := BFS(g)
	it := runToHalt(t, w, 50_000_000)
	_ = it

	// Reference BFS from the same start vertex.
	start := int(w.Sym["start"])
	visited := make([]bool, g.N)
	visited[start] = true
	frontier := []int{start}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
				u := int(g.Edges[e])
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	base := w.Sym["visited"]
	for v := 0; v < g.N; v++ {
		got := w.Mem.Load64(base+uint64(v)*8) != 0
		if got != visited[v] {
			t.Fatalf("visited[%d] = %v, reference %v", v, got, visited[v])
		}
	}
}

func TestGraph500ParentsAreValid(t *testing.T) {
	w := Graph500()
	runToHalt(t, w, 400_000_000)
	g := graphgen.Kronecker(16, 16, 500) // same input as the builder
	vis := w.Sym["visited"]
	par := w.Sym["parent"]
	start := int(w.Sym["start"])
	checked := 0
	for u := 0; u < g.N && checked < 2000; u++ {
		if w.Mem.Load64(vis+uint64(u)*8) == 0 || u == start {
			continue
		}
		p := int(w.Mem.Load64(par + uint64(u)*8))
		// p must be a visited vertex with an edge to u.
		if w.Mem.Load64(vis+uint64(p)*8) == 0 {
			t.Fatalf("parent[%d] = %d is unvisited", u, p)
		}
		found := false
		for e := g.Offsets[p]; e < g.Offsets[p+1]; e++ {
			if int(g.Edges[e]) == u {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("parent[%d] = %d has no edge to %d", u, p, u)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no visited vertices to check")
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := graphgen.Kronecker(8, 6, 3)
	w := SSSP(g)
	runToHalt(t, w, 100_000_000)

	// Reference Dijkstra with the weights read back from the image.
	const inf = uint64(1) << 40
	wBase := w.Sym["weights"]
	weight := func(j uint64) uint64 { return w.Mem.Load64(wBase + j*8) }
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	start := int(w.Sym["start"])
	dist[start] = 0
	inQ := make([]bool, g.N)
	for {
		u, best := -1, inf
		for v := 0; v < g.N; v++ {
			if !inQ[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		inQ[u] = true
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			v := int(g.Edges[e])
			if nd := dist[u] + weight(e); nd < dist[v] {
				dist[v] = nd
			}
		}
	}
	dBase := w.Sym["dist"]
	for v := 0; v < g.N; v++ {
		if got := w.Mem.Load64(dBase + uint64(v)*8); got != dist[v] {
			t.Fatalf("dist[%d] = %d, Dijkstra %d", v, got, dist[v])
		}
	}
}

func TestCCReachesEdgeFixpoint(t *testing.T) {
	g := graphgen.Kronecker(7, 4, 9)
	w := CC(g)
	// Run many propagation passes, then check the fixpoint property: every
	// edge's endpoints carry equal labels.
	runPasses(t, w, 40, 50_000_000)
	comp := w.Sym["comp"]
	srcA, dstA := w.Sym["src"], w.Sym["dst"]
	m := int(w.Sym["m"])
	for e := 0; e < m; e++ {
		u := w.Mem.Load64(srcA + uint64(e)*8)
		v := w.Mem.Load64(dstA + uint64(e)*8)
		cu := w.Mem.Load64(comp + u*8)
		cv := w.Mem.Load64(comp + v*8)
		if cu != cv {
			t.Fatalf("edge (%d,%d): labels %d != %d after fixpoint", u, v, cu, cv)
		}
	}
	// Labels must be valid vertex ids and never exceed the vertex's own id.
	for v := 0; v < g.N; v++ {
		c := w.Mem.Load64(comp + uint64(v)*8)
		if c > uint64(v) {
			t.Fatalf("comp[%d] = %d increased", v, c)
		}
	}
}

func TestNASISHistogramCorrect(t *testing.T) {
	w := NASIS()
	n := int(w.Sym["n"])
	buckets := int(w.Sym["buckets"])
	keys := w.Sym["keys"]
	// Snapshot expected histogram from the keys in the image.
	want := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		want[w.Mem.Load64(keys+uint64(i)*8)]++
	}
	runPasses(t, w, 1, 200_000_000)
	count := w.Sym["count"]
	checked := 0
	for k, c := range want {
		if int(k) >= buckets {
			t.Fatalf("key %d out of range", k)
		}
		if got := w.Mem.Load64(count + k*8); got != c {
			t.Fatalf("count[%d] = %d, want %d", k, got, c)
		}
		checked++
		if checked > 5000 {
			break
		}
	}
}

func TestCamelCountsSumToKeys(t *testing.T) {
	w := Camel()
	n := int(w.Sym["n"])
	tbl := int(w.Sym["tbl"])
	runPasses(t, w, 1, 200_000_000)
	c := w.Sym["c"]
	var sum uint64
	for i := 0; i < tbl; i++ {
		sum += w.Mem.Load64(c + uint64(i)*8)
	}
	if sum != uint64(n) {
		t.Fatalf("sum of C counts = %d, want %d (one increment per key)", sum, n)
	}
}

func TestRandomAccessInvolution(t *testing.T) {
	// GUPS XOR updates: two full passes restore the original table.
	w := RandomAccess()
	tBase := w.Sym["t"]
	tbl := int(w.Sym["tbl"])
	before := make([]uint64, 512)
	for i := range before {
		before[i] = w.Mem.Load64(tBase + uint64(i)*8)
	}
	runPasses(t, w, 2, 400_000_000)
	for i := range before {
		if got := w.Mem.Load64(tBase + uint64(i)*8); got != before[i] {
			t.Fatalf("T[%d] = %d after two XOR passes, want %d", i, got, before[i])
		}
	}
	_ = tbl
}

func TestHJ2ProbesStayInTable(t *testing.T) {
	w := HJ2()
	// Every table entry indexes back into the table; the chain can never
	// leave [0, tbl).
	tbl := w.Sym["tbl"]
	ht := w.Sym["ht"]
	for i := 0; i < 4096; i++ {
		if v := w.Mem.Load64(ht + uint64(i)*8); v >= tbl {
			t.Fatalf("ht[%d] = %d escapes the table", i, v)
		}
	}
	runPasses(t, w, 1, 200_000_000)
}

func TestPRRanksEvolve(t *testing.T) {
	g := graphgen.Kronecker(8, 6, 4)
	w := PR(g)
	rank := w.Sym["rank"]
	it := interp.New(w.Prog, w.Mem)
	it.Run(200_000)
	var nonInit int
	for v := 0; v < g.N; v++ {
		if w.Mem.Load64(rank+uint64(v)*8) != 1 {
			nonInit++
		}
	}
	// After the swap the live rank array is "next"; at least one of the
	// two arrays must have evolved away from the all-ones init.
	next := w.Sym["next"]
	for v := 0; v < g.N; v++ {
		if w.Mem.Load64(next+uint64(v)*8) != 0 {
			nonInit++
		}
	}
	if nonInit == 0 {
		t.Error("pagerank never updated any rank")
	}
}

func TestBCSigmaAccumulates(t *testing.T) {
	g := smallGraph()
	w := BC(g)
	runToHalt(t, w, 100_000_000)
	sigma := w.Sym["sigma"]
	depth := w.Sym["depth"]
	var reached, counted int
	for v := 0; v < g.N; v++ {
		if w.Mem.Load64(depth+uint64(v)*8) != 0 {
			reached++
			if w.Mem.Load64(sigma+uint64(v)*8) > 0 {
				counted++
			}
		}
	}
	if reached == 0 {
		t.Fatal("bc reached nothing")
	}
	if counted < reached*9/10 {
		t.Errorf("only %d of %d reached vertices have path counts", counted, reached)
	}
}

func TestSpecCatalogues(t *testing.T) {
	in := graphgen.Input{Name: "T", Build: smallGraph}
	gap := GAPSpecs(in)
	if len(gap) != 5 {
		t.Errorf("GAP specs = %d, want 5", len(gap))
	}
	hpc := HPCDBSpecs()
	if len(hpc) != 8 {
		t.Errorf("HPCDB specs = %d, want 8", len(hpc))
	}
	names := map[string]bool{}
	for _, s := range append(gap, hpc...) {
		if names[s.Name] {
			t.Errorf("duplicate spec %s", s.Name)
		}
		names[s.Name] = true
		if s.ROI == 0 {
			t.Errorf("%s: zero ROI", s.Name)
		}
	}
}

func TestFrontendSkips(t *testing.T) {
	w := Camel()
	fe := w.Frontend()
	if fe.Seq != w.Skip {
		t.Errorf("frontend Seq = %d, want %d", fe.Seq, w.Skip)
	}
}

func TestWorkingSetsExceedLLC(t *testing.T) {
	// The paper's workloads miss in the 8 MB LLC; each memory image must
	// be comfortably larger.
	for _, build := range []func() *Workload{Camel, HJ2, NASIS, RandomAccess, NASCG, Kangaroo} {
		w := build()
		if fp := w.Mem.Footprint(); fp < 12<<20 {
			t.Errorf("%s footprint %d MB; must exceed the 8 MB LLC", w.Name, fp>>20)
		}
	}
}
